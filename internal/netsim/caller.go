package netsim

import (
	"errors"
	"math/rand"
	"sync"
	"time"
)

// ErrBreakerOpen is the fast-fail returned while a Caller's circuit
// breaker is open: the endpoint has failed repeatedly and calls are
// rejected without touching the network until the cooldown elapses.
var ErrBreakerOpen = errors.New("netsim: circuit breaker open")

// CallerConfig tunes one endpoint's client-side resilience policy.
type CallerConfig struct {
	// Attempts is the number of tries per Do (including the first).
	Attempts int
	// Deadline bounds one Do end to end — no retry is started after
	// the deadline has passed, so a Do can never block the app for
	// longer than roughly Deadline plus one attempt.
	Deadline time.Duration
	// BackoffBase/BackoffMax bound the jittered exponential backoff
	// slept between attempts.
	BackoffBase, BackoffMax time.Duration
	// BreakerThreshold consecutive failed Dos open the breaker.
	BreakerThreshold int
	// BreakerCooldown is how long the breaker stays open before
	// admitting a half-open probe.
	BreakerCooldown time.Duration
	// Seed drives the backoff jitter (deterministic per endpoint).
	Seed int64
}

func (c CallerConfig) withDefaults() CallerConfig {
	if c.Attempts <= 0 {
		c.Attempts = 3
	}
	if c.Deadline <= 0 {
		c.Deadline = 50 * time.Millisecond
	}
	if c.BackoffBase <= 0 {
		c.BackoffBase = time.Millisecond
	}
	if c.BackoffMax <= 0 {
		c.BackoffMax = 16 * time.Millisecond
	}
	if c.BreakerThreshold <= 0 {
		c.BreakerThreshold = 4
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 50 * time.Millisecond
	}
	return c
}

// Caller is the client-side resilience wrapper for one remote
// endpoint: deadline-bounded attempts with jittered exponential
// backoff, and a circuit breaker that fast-fails while the endpoint is
// known bad so the app degrades (journal-and-defer) instead of
// blocking. closed → open after BreakerThreshold consecutive Do
// failures; open → half-open after the cooldown (one probe Do is
// admitted); a successful probe closes it, a failed one re-opens it.
type Caller struct {
	cfg CallerConfig

	mu        sync.Mutex
	rng       *rand.Rand
	failures  int       // consecutive failed Dos
	openUntil time.Time // breaker open before this instant
	trips     int64
	fastFails int64
}

// NewCaller builds a Caller with the given policy (zero fields get
// defaults).
func NewCaller(cfg CallerConfig) *Caller {
	cfg = cfg.withDefaults()
	return &Caller{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// Do runs fn under the resilience policy: up to Attempts tries within
// Deadline, jittered backoff between tries, fast-fail with
// ErrBreakerOpen while the breaker is open. Returns nil on the first
// success, the last attempt's error otherwise.
func (c *Caller) Do(fn func() error) error {
	c.mu.Lock()
	if time.Now().Before(c.openUntil) {
		c.fastFails++
		c.mu.Unlock()
		return ErrBreakerOpen
	}
	c.mu.Unlock()

	deadline := time.Now().Add(c.cfg.Deadline)
	var err error
	for attempt := 0; attempt < c.cfg.Attempts; attempt++ {
		if attempt > 0 {
			time.Sleep(c.backoff(attempt))
			if time.Now().After(deadline) {
				break
			}
		}
		if err = fn(); err == nil {
			c.mu.Lock()
			c.failures = 0
			c.mu.Unlock()
			return nil
		}
	}

	c.mu.Lock()
	c.failures++
	if c.failures >= c.cfg.BreakerThreshold {
		// Open (or re-open after a failed half-open probe). The
		// failure count stays at the threshold so one more failed
		// probe re-opens immediately.
		c.openUntil = time.Now().Add(c.cfg.BreakerCooldown)
		c.failures = c.cfg.BreakerThreshold
		c.trips++
	}
	c.mu.Unlock()
	return err
}

// backoff draws the jittered exponential delay before the given
// (1-based) retry attempt: uniform in (0, min(base·2^(n-1), max)].
func (c *Caller) backoff(attempt int) time.Duration {
	d := c.cfg.BackoffBase << (attempt - 1)
	if d > c.cfg.BackoffMax || d <= 0 {
		d = c.cfg.BackoffMax
	}
	c.mu.Lock()
	j := time.Duration(c.rng.Int63n(int64(d))) + 1
	c.mu.Unlock()
	return j
}

// Open reports whether the breaker is currently rejecting calls.
func (c *Caller) Open() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return time.Now().Before(c.openUntil)
}

// Trips returns how many times the breaker has opened.
func (c *Caller) Trips() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.trips
}

// FastFails returns how many Dos were rejected without an attempt.
func (c *Caller) FastFails() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.fastFails
}

// Reset force-closes the breaker and clears the failure streak (used
// when the caller knows the endpoint recovered, e.g. after an explicit
// restart in tests).
func (c *Caller) Reset() {
	c.mu.Lock()
	c.failures = 0
	c.openUntil = time.Time{}
	c.mu.Unlock()
}
