// Package metrics provides the small measurement toolkit used by the
// Synapse benchmarks: latency histograms with percentile queries,
// throughput meters, and event timelines for the execution-sample figures.
//
// Everything is safe for concurrent use unless noted otherwise.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Histogram records duration samples and answers mean / percentile queries.
// It keeps the raw samples (the benchmark runs are bounded), which keeps
// percentiles exact rather than bucket-approximated.
type Histogram struct {
	mu      sync.Mutex
	samples []time.Duration
	sorted  bool
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram { return &Histogram{} }

// Observe records one sample.
func (h *Histogram) Observe(d time.Duration) {
	h.mu.Lock()
	h.samples = append(h.samples, d)
	h.sorted = false
	h.mu.Unlock()
}

// Count reports the number of recorded samples.
func (h *Histogram) Count() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.samples)
}

// Mean reports the arithmetic mean of all samples, or 0 if empty.
func (h *Histogram) Mean() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.samples) == 0 {
		return 0
	}
	var sum time.Duration
	for _, s := range h.samples {
		sum += s
	}
	return sum / time.Duration(len(h.samples))
}

// Percentile reports the p-th percentile (0 < p <= 100) using
// nearest-rank on the sorted samples, or 0 if empty.
func (h *Histogram) Percentile(p float64) time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	n := len(h.samples)
	if n == 0 {
		return 0
	}
	if !h.sorted {
		sort.Slice(h.samples, func(i, j int) bool { return h.samples[i] < h.samples[j] })
		h.sorted = true
	}
	if p <= 0 {
		return h.samples[0]
	}
	rank := int(math.Ceil(p / 100 * float64(n)))
	if rank < 1 {
		rank = 1
	}
	if rank > n {
		rank = n
	}
	return h.samples[rank-1]
}

// Max reports the largest sample, or 0 if empty.
func (h *Histogram) Max() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	var max time.Duration
	for _, s := range h.samples {
		if s > max {
			max = s
		}
	}
	return max
}

// Sum reports the total of all samples.
func (h *Histogram) Sum() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	var sum time.Duration
	for _, s := range h.samples {
		sum += s
	}
	return sum
}

// Reset discards all samples.
func (h *Histogram) Reset() {
	h.mu.Lock()
	h.samples = h.samples[:0]
	h.sorted = false
	h.mu.Unlock()
}

// Counter is a monotonically increasing event counter (journal
// republishes, delivery retries, dead-letters). Unlike Meter it carries
// no clock; it is a plain concurrency-safe tally.
type Counter struct {
	n atomic.Int64
}

// NewCounter returns a zeroed counter.
func NewCounter() *Counter { return &Counter{} }

// Add records n events.
func (c *Counter) Add(n int64) { c.n.Add(n) }

// Inc records one event.
func (c *Counter) Inc() { c.n.Add(1) }

// Count reports the events recorded so far.
func (c *Counter) Count() int64 { return c.n.Load() }

// Meter counts events over a wall-clock interval to compute throughput.
type Meter struct {
	mu    sync.Mutex
	count int64
	start time.Time
}

// NewMeter returns a meter whose clock starts now.
func NewMeter() *Meter { return &Meter{start: time.Now()} }

// Add records n events.
func (m *Meter) Add(n int64) {
	m.mu.Lock()
	m.count += n
	m.mu.Unlock()
}

// Count reports the number of events recorded so far.
func (m *Meter) Count() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.count
}

// Rate reports events per second since the meter started.
func (m *Meter) Rate() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	elapsed := time.Since(m.start).Seconds()
	if elapsed <= 0 {
		return 0
	}
	return float64(m.count) / elapsed
}

// RateSince reports events per second over an explicit interval, which is
// what the duration-bounded throughput benchmarks use.
func (m *Meter) RateSince(start time.Time, end time.Time) float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	elapsed := end.Sub(start).Seconds()
	if elapsed <= 0 {
		return 0
	}
	return float64(m.count) / elapsed
}

// StageStat is one stage's summary in a StageSet snapshot.
type StageStat struct {
	Count int
	Mean  time.Duration
	P95   time.Duration
	Total time.Duration
}

// StageSet times the named stages of a processing pipeline (e.g. the
// subscriber's decode / barrier / dep-wait / apply / ack stages), one
// histogram per stage, preserving declaration order for display.
type StageSet struct {
	mu     sync.Mutex
	order  []string
	stages map[string]*Histogram
}

// NewStageSet declares the stages in display order. Observing an
// undeclared stage registers it on the fly.
func NewStageSet(names ...string) *StageSet {
	s := &StageSet{stages: make(map[string]*Histogram, len(names))}
	for _, n := range names {
		s.order = append(s.order, n)
		s.stages[n] = NewHistogram()
	}
	return s
}

func (s *StageSet) stage(name string) *Histogram {
	s.mu.Lock()
	defer s.mu.Unlock()
	h, ok := s.stages[name]
	if !ok {
		h = NewHistogram()
		s.order = append(s.order, name)
		s.stages[name] = h
	}
	return h
}

// Observe records one sample for the stage.
func (s *StageSet) Observe(name string, d time.Duration) {
	s.stage(name).Observe(d)
}

// Stages returns the stage names in declaration order.
func (s *StageSet) Stages() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]string(nil), s.order...)
}

// Stat summarizes one stage (zero value when the stage is unknown or
// has no samples).
func (s *StageSet) Stat(name string) StageStat {
	s.mu.Lock()
	h, ok := s.stages[name]
	s.mu.Unlock()
	if !ok {
		return StageStat{}
	}
	return StageStat{Count: h.Count(), Mean: h.Mean(), P95: h.Percentile(95), Total: h.Sum()}
}

// Snapshot summarizes every stage, keyed by stage name.
func (s *StageSet) Snapshot() map[string]StageStat {
	out := make(map[string]StageStat)
	for _, name := range s.Stages() {
		out[name] = s.Stat(name)
	}
	return out
}

// Reset discards all samples in every stage.
func (s *StageSet) Reset() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, h := range s.stages {
		h.Reset()
	}
}

// String renders one line per stage: name, count, mean, p95.
func (s *StageSet) String() string {
	var b strings.Builder
	for _, name := range s.Stages() {
		st := s.Stat(name)
		fmt.Fprintf(&b, "%-10s n=%-7d mean=%-10s p95=%s\n", name, st.Count, Fmt(st.Mean), Fmt(st.P95))
	}
	return b.String()
}

// Event is one entry on a Timeline.
type Event struct {
	At    time.Duration // offset from the timeline origin
	Actor string        // e.g. "Diaspora", "Mailer"
	Phase string        // e.g. "app", "synapse-pub", "synapse-sub"
	Label string
}

// Timeline records ordered events relative to an origin instant. It backs
// the Fig 9 execution-sample reproductions.
type Timeline struct {
	mu     sync.Mutex
	origin time.Time
	events []Event
}

// NewTimeline returns a timeline whose origin is now.
func NewTimeline() *Timeline { return &Timeline{origin: time.Now()} }

// Record appends an event stamped with the current offset from the origin.
func (t *Timeline) Record(actor, phase, label string) {
	at := time.Since(t.origin)
	t.mu.Lock()
	t.events = append(t.events, Event{At: at, Actor: actor, Phase: phase, Label: label})
	t.mu.Unlock()
}

// Events returns a copy of all events sorted by time.
func (t *Timeline) Events() []Event {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Event, len(t.events))
	copy(out, t.events)
	sort.Slice(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out
}

// String renders the timeline as one line per event, suitable for the
// Fig 9-style textual timelines printed by the bench harness.
func (t *Timeline) String() string {
	var b strings.Builder
	for _, e := range t.Events() {
		fmt.Fprintf(&b, "%8.2fms  %-18s %-12s %s\n",
			float64(e.At.Microseconds())/1000.0, e.Actor, e.Phase, e.Label)
	}
	return b.String()
}

// Fmt renders a duration in milliseconds with two decimals, the unit the
// paper's tables use.
func Fmt(d time.Duration) string {
	return fmt.Sprintf("%.2fms", float64(d.Microseconds())/1000.0)
}
