package metrics

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram()
	if h.Mean() != 0 || h.Percentile(99) != 0 || h.Max() != 0 || h.Count() != 0 {
		t.Error("empty histogram should report zeros")
	}
}

func TestHistogramStats(t *testing.T) {
	h := NewHistogram()
	for i := 1; i <= 100; i++ {
		h.Observe(time.Duration(i) * time.Millisecond)
	}
	if h.Count() != 100 {
		t.Errorf("Count = %d", h.Count())
	}
	if got := h.Mean(); got != 50500*time.Microsecond {
		t.Errorf("Mean = %v", got)
	}
	if got := h.Percentile(50); got != 50*time.Millisecond {
		t.Errorf("p50 = %v", got)
	}
	if got := h.Percentile(99); got != 99*time.Millisecond {
		t.Errorf("p99 = %v", got)
	}
	if got := h.Percentile(100); got != 100*time.Millisecond {
		t.Errorf("p100 = %v", got)
	}
	if got := h.Percentile(0); got != 1*time.Millisecond {
		t.Errorf("p0 = %v", got)
	}
	if got := h.Max(); got != 100*time.Millisecond {
		t.Errorf("Max = %v", got)
	}
	if got := h.Sum(); got != 5050*time.Millisecond {
		t.Errorf("Sum = %v", got)
	}
}

func TestHistogramObserveAfterPercentile(t *testing.T) {
	h := NewHistogram()
	h.Observe(5 * time.Millisecond)
	_ = h.Percentile(50)
	h.Observe(1 * time.Millisecond) // must re-sort
	if got := h.Percentile(0); got != 1*time.Millisecond {
		t.Errorf("min after late observe = %v", got)
	}
}

func TestHistogramReset(t *testing.T) {
	h := NewHistogram()
	h.Observe(time.Second)
	h.Reset()
	if h.Count() != 0 || h.Mean() != 0 {
		t.Error("Reset did not clear samples")
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				h.Observe(time.Microsecond)
				_ = h.Percentile(99)
			}
		}()
	}
	wg.Wait()
	if h.Count() != 8000 {
		t.Errorf("Count = %d", h.Count())
	}
}

func TestMeter(t *testing.T) {
	m := NewMeter()
	m.Add(10)
	m.Add(5)
	if m.Count() != 15 {
		t.Errorf("Count = %d", m.Count())
	}
	start := time.Now().Add(-time.Second)
	rate := m.RateSince(start, start.Add(time.Second))
	if rate != 15 {
		t.Errorf("RateSince = %f", rate)
	}
	if m.RateSince(start, start) != 0 {
		t.Error("zero interval should report zero rate")
	}
	if m.Rate() <= 0 {
		t.Error("Rate should be positive after events")
	}
}

func TestTimelineOrderingAndFormat(t *testing.T) {
	tl := NewTimeline()
	tl.Record("Diaspora", "app", "post created")
	tl.Record("Mailer", "synapse-sub", "received post")
	events := tl.Events()
	if len(events) != 2 {
		t.Fatalf("events = %d", len(events))
	}
	if events[0].At > events[1].At {
		t.Error("events out of order")
	}
	s := tl.String()
	if !strings.Contains(s, "Diaspora") || !strings.Contains(s, "synapse-sub") {
		t.Errorf("String() = %q", s)
	}
}

func TestFmt(t *testing.T) {
	if got := Fmt(1500 * time.Microsecond); got != "1.50ms" {
		t.Errorf("Fmt = %q", got)
	}
}

func TestStageSet(t *testing.T) {
	s := NewStageSet("decode", "apply")
	s.Observe("decode", 2*time.Millisecond)
	s.Observe("decode", 4*time.Millisecond)
	s.Observe("apply", 10*time.Millisecond)
	s.Observe("ack", time.Millisecond) // registered on the fly

	if got := s.Stages(); len(got) != 3 || got[0] != "decode" || got[1] != "apply" || got[2] != "ack" {
		t.Fatalf("Stages = %v", got)
	}
	st := s.Stat("decode")
	if st.Count != 2 || st.Mean != 3*time.Millisecond || st.Total != 6*time.Millisecond {
		t.Errorf("decode stat = %+v", st)
	}
	if st := s.Stat("unknown"); st.Count != 0 {
		t.Errorf("unknown stage stat = %+v", st)
	}
	snap := s.Snapshot()
	if len(snap) != 3 || snap["apply"].Count != 1 {
		t.Errorf("snapshot = %+v", snap)
	}
	if out := s.String(); !strings.Contains(out, "decode") || !strings.Contains(out, "3.00ms") {
		t.Errorf("String = %q", out)
	}
	s.Reset()
	if st := s.Stat("decode"); st.Count != 0 {
		t.Errorf("after reset: %+v", st)
	}
}

func TestStageSetConcurrent(t *testing.T) {
	s := NewStageSet("a")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				s.Observe("a", time.Microsecond)
				s.Observe("b", time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if got := s.Stat("a").Count; got != 800 {
		t.Errorf("a count = %d", got)
	}
	if got := s.Stat("b").Count; got != 800 {
		t.Errorf("b count = %d", got)
	}
}
