// Package faultinject provides named fault sites for deterministic
// failure testing. Production code calls Fire at well-known points of
// the write and delivery paths (e.g. "publish/before-send"); tests arm
// faults at those sites — an injected error, or a simulated process
// crash (panic) — with hit-count precision, so a randomized crash/
// restart schedule is fully reproducible from its seed.
//
// A nil *Registry is valid and inert: Fire on it is a no-op, so
// production paths pay one nil check when no faults are configured.
package faultinject

import (
	"fmt"
	"sync"
)

// Fault is one armed behaviour at a site. It returns the error to
// inject (nil to let the hit pass), or panics to simulate a crash.
type Fault func(site string) error

// Crash returns a fault that simulates the process dying at the site by
// panicking with a *CrashPanic. Test harnesses recover the panic with
// IsCrash and treat everything after the site as never having run.
func Crash() Fault {
	return func(site string) error {
		panic(&CrashPanic{Site: site})
	}
}

// Fail returns a fault that injects err at the site.
func Fail(err error) Fault {
	return func(string) error { return err }
}

// CrashPanic is the panic value raised by Crash faults.
type CrashPanic struct{ Site string }

// Error makes the panic value readable when it escapes a test recover.
func (c *CrashPanic) Error() string {
	return fmt.Sprintf("faultinject: simulated crash at %s", c.Site)
}

// IsCrash reports whether a recovered panic value is a simulated crash.
func IsCrash(r any) bool {
	_, ok := r.(*CrashPanic)
	return ok
}

// arm is one armed fault: skip hits pass through untouched, then the
// fault fires for `times` hits (times < 0 = forever), then it expires.
type arm struct {
	skip  int
	times int
	f     Fault
}

// Registry tracks armed faults and hit counts per site.
type Registry struct {
	mu   sync.Mutex
	arms map[string][]*arm
	hits map[string]int
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{arms: make(map[string][]*arm), hits: make(map[string]int)}
}

// Arm installs a one-shot fault at the site: the next hit fires it.
func (r *Registry) Arm(site string, f Fault) { r.ArmN(site, 0, 1, f) }

// ArmN installs a fault at the site that skips the next `skip` hits,
// then fires for `times` hits (times < 0 fires forever).
func (r *Registry) ArmN(site string, skip, times int, f Fault) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.arms[site] = append(r.arms[site], &arm{skip: skip, times: times, f: f})
}

// Disarm removes every fault armed at the site.
func (r *Registry) Disarm(site string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.arms, site)
}

// Reset removes all faults and zeroes all hit counters.
func (r *Registry) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.arms = make(map[string][]*arm)
	r.hits = make(map[string]int)
}

// Hits reports how many times the site has been hit (fired or not).
func (r *Registry) Hits(site string) int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.hits[site]
}

// Fire records a hit at the site and runs the first armed fault that is
// due, returning its injected error. Crash faults panic from inside
// Fire. Safe on a nil registry (no-op).
func (r *Registry) Fire(site string) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	r.hits[site]++
	var due Fault
	arms := r.arms[site]
	for i, a := range arms {
		if a.skip > 0 {
			a.skip--
			continue
		}
		due = a.f
		if a.times > 0 {
			a.times--
		}
		if a.times == 0 {
			r.arms[site] = append(arms[:i], arms[i+1:]...)
		}
		break
	}
	r.mu.Unlock()
	if due == nil {
		return nil
	}
	return due(site)
}
