package faultinject

import (
	"errors"
	"testing"
)

func TestNilRegistryIsInert(t *testing.T) {
	var r *Registry
	if err := r.Fire("anywhere"); err != nil {
		t.Fatalf("nil registry fired: %v", err)
	}
	if r.Hits("anywhere") != 0 {
		t.Fatal("nil registry counted hits")
	}
}

func TestArmOneShot(t *testing.T) {
	r := New()
	boom := errors.New("boom")
	r.Arm("site", Fail(boom))
	if err := r.Fire("site"); !errors.Is(err, boom) {
		t.Fatalf("first hit = %v, want boom", err)
	}
	if err := r.Fire("site"); err != nil {
		t.Fatalf("second hit = %v, want nil (one-shot)", err)
	}
	if got := r.Hits("site"); got != 2 {
		t.Fatalf("hits = %d, want 2", got)
	}
}

func TestArmNSkipAndTimes(t *testing.T) {
	r := New()
	boom := errors.New("boom")
	r.ArmN("site", 2, 3, Fail(boom))
	var fired int
	for i := 0; i < 10; i++ {
		if r.Fire("site") != nil {
			fired++
		}
	}
	if fired != 3 {
		t.Fatalf("fired %d times, want 3", fired)
	}
	// The two skipped hits came first.
	if r.Fire("site") != nil {
		t.Fatal("expired arm still firing")
	}
}

func TestArmForever(t *testing.T) {
	r := New()
	r.ArmN("site", 0, -1, Fail(errors.New("always")))
	for i := 0; i < 5; i++ {
		if r.Fire("site") == nil {
			t.Fatalf("hit %d did not fire", i)
		}
	}
	r.Disarm("site")
	if r.Fire("site") != nil {
		t.Fatal("disarmed site still firing")
	}
}

func TestCrashPanics(t *testing.T) {
	r := New()
	r.Arm("site", Crash())
	defer func() {
		rec := recover()
		if rec == nil {
			t.Fatal("crash fault did not panic")
		}
		if !IsCrash(rec) {
			t.Fatalf("panic value %v is not a CrashPanic", rec)
		}
		if rec.(*CrashPanic).Site != "site" {
			t.Fatalf("crash site = %q", rec.(*CrashPanic).Site)
		}
	}()
	_ = r.Fire("site")
}

func TestReset(t *testing.T) {
	r := New()
	r.ArmN("site", 0, -1, Fail(errors.New("x")))
	_ = r.Fire("site")
	r.Reset()
	if r.Fire("site") != nil || r.Hits("site") != 1 {
		t.Fatal("reset did not clear arms and counters")
	}
}
