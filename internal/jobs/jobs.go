// Package jobs provides the background-job runner (the Sidekiq stand-in
// of §4.2): applications are stateless outside controllers, and Synapse
// tracks dependencies "within the scope of individual controllers
// (serving HTTP requests) and the scope of individual background jobs".
// Each job here runs inside its own controller scope with no user
// session, so its writes are dependency-tracked exactly like a request
// handler's.
package jobs

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"synapse/internal/core"
)

// Job is one unit of background work. The controller is the job's
// dependency-tracking scope.
type Job func(ctl *core.Controller) error

// ErrStopped is returned by Enqueue after the runner stopped.
var ErrStopped = errors.New("jobs: runner stopped")

// Runner executes queued jobs on a fixed worker pool with bounded
// retries.
type Runner struct {
	app        *core.App
	queue      chan Job
	maxRetries int
	backoff    time.Duration

	mu      sync.Mutex
	stopped bool
	wg      sync.WaitGroup

	// Counters for tests and monitoring.
	Completed atomic.Int64
	Failed    atomic.Int64 // jobs that exhausted their retries
	Retries   atomic.Int64
}

// Options tunes a Runner.
type Options struct {
	// Workers is the pool size (default 1).
	Workers int
	// QueueDepth bounds the pending-job buffer (default 1024).
	QueueDepth int
	// MaxRetries is how many times a failing job is retried before
	// being dropped (default 3).
	MaxRetries int
	// Backoff is the delay between retries (default 10ms).
	Backoff time.Duration
}

// NewRunner starts a job runner for the app.
func NewRunner(app *core.App, opts Options) *Runner {
	if opts.Workers <= 0 {
		opts.Workers = 1
	}
	if opts.QueueDepth <= 0 {
		opts.QueueDepth = 1024
	}
	if opts.MaxRetries < 0 {
		opts.MaxRetries = 0
	} else if opts.MaxRetries == 0 {
		opts.MaxRetries = 3
	}
	if opts.Backoff <= 0 {
		opts.Backoff = 10 * time.Millisecond
	}
	r := &Runner{
		app:        app,
		queue:      make(chan Job, opts.QueueDepth),
		maxRetries: opts.MaxRetries,
		backoff:    opts.Backoff,
	}
	for i := 0; i < opts.Workers; i++ {
		r.wg.Add(1)
		go r.worker()
	}
	return r
}

// Enqueue schedules a job. It blocks while the buffer is full and
// returns ErrStopped after Stop.
func (r *Runner) Enqueue(j Job) error {
	r.mu.Lock()
	if r.stopped {
		r.mu.Unlock()
		return ErrStopped
	}
	r.mu.Unlock()
	r.queue <- j
	return nil
}

// Stop drains the queue and waits for in-flight jobs to finish.
func (r *Runner) Stop() {
	r.mu.Lock()
	if r.stopped {
		r.mu.Unlock()
		return
	}
	r.stopped = true
	close(r.queue)
	r.mu.Unlock()
	r.wg.Wait()
}

func (r *Runner) worker() {
	defer r.wg.Done()
	for j := range r.queue {
		r.run(j)
	}
}

func (r *Runner) run(j Job) {
	for attempt := 0; ; attempt++ {
		// A fresh controller per attempt: each retry is its own
		// dependency-tracking scope, like a re-enqueued Sidekiq job.
		ctl := r.app.NewController(nil)
		err := j(ctl)
		ctl.Close()
		if err == nil {
			r.Completed.Add(1)
			return
		}
		if attempt >= r.maxRetries {
			r.Failed.Add(1)
			return
		}
		r.Retries.Add(1)
		time.Sleep(r.backoff)
	}
}
