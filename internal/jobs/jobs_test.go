package jobs

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"synapse/internal/core"
	"synapse/internal/model"
	"synapse/internal/orm/documentorm"
	"synapse/internal/storage/docdb"
	"synapse/internal/wire"
)

func newApp(t *testing.T, f *core.Fabric, name string) (*core.App, *documentorm.Mapper) {
	t.Helper()
	m := documentorm.New(docdb.New(docdb.MongoDB))
	a, err := core.NewApp(f, name, m, core.Config{Mode: core.Causal})
	if err != nil {
		t.Fatal(err)
	}
	return a, m
}

func itemDesc() *model.Descriptor {
	return model.NewDescriptor("Item", model.Field{Name: "v", Type: model.Int})
}

func TestJobsPublishThroughControllers(t *testing.T) {
	f := core.NewFabric()
	pub, _ := newApp(t, f, "pub")
	if err := pub.Publish(itemDesc(), core.PubSpec{Attrs: []string{"v"}}); err != nil {
		t.Fatal(err)
	}
	sub, subMapper := newApp(t, f, "sub")
	if err := sub.Subscribe(itemDesc(), core.SubSpec{From: "pub", Attrs: []string{"v"}}); err != nil {
		t.Fatal(err)
	}
	sub.StartWorkers(2)
	defer sub.StopWorkers()

	r := NewRunner(pub, Options{Workers: 4})
	const jobs = 30
	for i := 0; i < jobs; i++ {
		i := i
		if err := r.Enqueue(func(ctl *core.Controller) error {
			rec := model.NewRecord("Item", fmt.Sprintf("it%d", i))
			rec.Set("v", i)
			_, err := ctl.Create(rec)
			return err
		}); err != nil {
			t.Fatal(err)
		}
	}
	r.Stop()
	if got := r.Completed.Load(); got != jobs {
		t.Fatalf("completed %d jobs", got)
	}

	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if subMapper.Len("Item") == jobs {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("replicated %d of %d job writes", subMapper.Len("Item"), jobs)
}

func TestJobRetriesThenSucceeds(t *testing.T) {
	f := core.NewFabric()
	app, _ := newApp(t, f, "app")
	if err := app.Publish(itemDesc(), core.PubSpec{Attrs: []string{"v"}}); err != nil {
		t.Fatal(err)
	}
	r := NewRunner(app, Options{Workers: 1, MaxRetries: 5, Backoff: time.Millisecond})
	var attempts atomic.Int64
	if err := r.Enqueue(func(ctl *core.Controller) error {
		if attempts.Add(1) < 3 {
			return errors.New("flaky dependency")
		}
		rec := model.NewRecord("Item", "it1")
		rec.Set("v", 1)
		_, err := ctl.Create(rec)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	r.Stop()
	if attempts.Load() != 3 {
		t.Errorf("attempts = %d", attempts.Load())
	}
	if r.Completed.Load() != 1 || r.Failed.Load() != 0 || r.Retries.Load() != 2 {
		t.Errorf("counters = completed=%d failed=%d retries=%d",
			r.Completed.Load(), r.Failed.Load(), r.Retries.Load())
	}
}

func TestJobExhaustsRetries(t *testing.T) {
	f := core.NewFabric()
	app, _ := newApp(t, f, "app")
	r := NewRunner(app, Options{Workers: 1, MaxRetries: 2, Backoff: time.Millisecond})
	var attempts atomic.Int64
	_ = r.Enqueue(func(*core.Controller) error {
		attempts.Add(1)
		return errors.New("permanently broken")
	})
	r.Stop()
	if attempts.Load() != 3 { // initial + 2 retries
		t.Errorf("attempts = %d", attempts.Load())
	}
	if r.Failed.Load() != 1 || r.Completed.Load() != 0 {
		t.Errorf("counters = %d/%d", r.Failed.Load(), r.Completed.Load())
	}
}

func TestEnqueueAfterStop(t *testing.T) {
	f := core.NewFabric()
	app, _ := newApp(t, f, "app")
	r := NewRunner(app, Options{})
	r.Stop()
	r.Stop() // idempotent
	if err := r.Enqueue(func(*core.Controller) error { return nil }); !errors.Is(err, ErrStopped) {
		t.Errorf("Enqueue after stop = %v", err)
	}
}

func TestJobWritesAreDependencyTracked(t *testing.T) {
	// Two writes in one job chain causally: the second message depends
	// on the first (controller chaining, §4.2).
	f := core.NewFabric()
	pub, _ := newApp(t, f, "pub")
	if err := pub.Publish(itemDesc(), core.PubSpec{Attrs: []string{"v"}}); err != nil {
		t.Fatal(err)
	}
	q, _ := f.Broker.DeclareQueue("tap", 0)
	if err := f.Broker.Bind("tap", "pub"); err != nil {
		t.Fatal(err)
	}

	r := NewRunner(pub, Options{Workers: 1})
	if err := r.Enqueue(func(ctl *core.Controller) error {
		for i := 0; i < 2; i++ {
			rec := model.NewRecord("Item", fmt.Sprintf("chain%d", i))
			rec.Set("v", i)
			if _, err := ctl.Create(rec); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	r.Stop()

	d1, ok1, _ := q.TryGet()
	d2, ok2, _ := q.TryGet()
	if !ok1 || !ok2 {
		t.Fatal("expected two messages")
	}
	m1, err := wire.Unmarshal(d1.Payload)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := wire.Unmarshal(d2.Payload)
	if err != nil {
		t.Fatal(err)
	}
	// The second message carries the first write's object as a chained
	// read dependency (controller chaining within the job scope).
	firstObj := m1.Operations[0].ObjectDep
	if _, chained := m2.Dependencies[firstObj]; !chained {
		t.Errorf("second job message lacks the chained dependency %s: %v",
			firstObj, m2.Dependencies)
	}
}
