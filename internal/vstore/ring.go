package vstore

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// ring is a consistent-hash ring in the style of Dynamo, used to spread
// dependency keys across version-store shards (§4.2, "Synapse shards the
// version store using a hash ring similar to Dynamo").
type ring struct {
	points []ringPoint
}

type ringPoint struct {
	hash  uint64
	shard int
}

const virtualNodes = 256

func newRing(shards int) *ring {
	r := &ring{points: make([]ringPoint, 0, shards*virtualNodes)}
	for s := 0; s < shards; s++ {
		for v := 0; v < virtualNodes; v++ {
			h := hashString(fmt.Sprintf("shard-%d-vnode-%d", s, v))
			r.points = append(r.points, ringPoint{hash: h, shard: s})
		}
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].hash < r.points[j].hash })
	return r
}

// locate returns the shard owning the hash: the first ring point at or
// after it, wrapping around.
func (r *ring) locate(h uint64) int {
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].shard
}

func hashString(s string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(s))
	return h.Sum64()
}

func hashUint(v uint64) uint64 {
	var buf [8]byte
	for i := 0; i < 8; i++ {
		buf[i] = byte(v >> (8 * i))
	}
	h := fnv.New64a()
	_, _ = h.Write(buf[:])
	return h.Sum64()
}
