// Package vstore implements Synapse's version store (Redis in the
// paper's deployment): the sharded counter service behind the update
// delivery mechanism of §4.2.
//
// For every dependency key the publisher side keeps two counters — ops,
// the number of operations that have referenced the object, and version,
// the object's version — while the subscriber side keeps the latest ops
// counter. All multi-key operations execute atomically within a shard
// (the stand-in for Redis LUA scripts); keys are spread across shards
// with a Dynamo-style consistent-hash ring, and cross-shard lock
// acquisition is ordered to avoid deadlock.
//
// Dependency names are hashed into a fixed-cardinality key space so
// every version store consumes O(1) memory (§4.2, "Scaling the Version
// Store"); a cardinality of 1 degenerates to global ordering, which the
// ablation benchmark exploits.
//
// An injectable per-script round-trip latency models the network cost of
// a remote Redis, and Kill/Revive model version-store death for the
// generation-number recovery path (§4.4).
package vstore

import (
	"errors"
	"sort"
	"sync"
	"time"

	"synapse/internal/timeutil"
)

// ErrDead is returned while the store is killed (crash injection).
var ErrDead = errors.New("vstore: store is dead")

// ErrTimeout is returned when WaitAtLeast exceeds its deadline.
var ErrTimeout = errors.New("vstore: dependency wait timed out")

// Key is a hashed dependency key.
type Key uint64

// Counters is the publisher-side per-dependency state.
type Counters struct {
	Ops     uint64
	Version uint64
}

// Config sizes a store.
type Config struct {
	// Shards is the number of shard instances (>=1).
	Shards int
	// Cardinality bounds the dependency hash space; 0 means unhashed
	// (the raw 64-bit space). 1 serializes everything (global ordering).
	Cardinality uint64
	// RTT is injected once per shard script call, modelling the network
	// round trip to a remote store. Zero for unit tests.
	RTT time.Duration
	// Precise busy-waits injected latencies instead of sleeping, for
	// sub-millisecond accuracy on sequential measurement paths. Never
	// enable it for many-worker runs: spinning burns a core per waiter.
	Precise bool
	// PerKey is injected per key touched by a script call, modelling
	// Redis command processing and payload cost; it produces the
	// linear tail of the Fig 13(a) overhead curve at high dependency
	// counts. Zero for unit tests.
	PerKey time.Duration
}

// scriptCost computes the injected latency for a script touching n keys.
func (c Config) scriptCost(n int) time.Duration {
	return c.RTT + time.Duration(n)*c.PerKey
}

// Store is one version store (publisher-side or subscriber-side; the
// same structure serves both roles).
type Store struct {
	cfg    Config
	ring   *ring
	shards []*shard

	mu   sync.RWMutex
	dead bool
}

// New builds a store from the config.
func New(cfg Config) *Store {
	if cfg.Shards < 1 {
		cfg.Shards = 1
	}
	s := &Store{cfg: cfg, ring: newRing(cfg.Shards)}
	for i := 0; i < cfg.Shards; i++ {
		s.shards = append(s.shards, newShard())
	}
	return s
}

// Config returns the store's configuration.
func (s *Store) Config() Config { return s.cfg }

// KeyFor hashes a dependency name into the store's key space.
func (s *Store) KeyFor(name string) Key {
	h := hashString(name)
	if s.cfg.Cardinality > 0 {
		h %= s.cfg.Cardinality
	}
	return Key(h)
}

func (s *Store) shardFor(k Key) *shard {
	return s.shards[s.ring.locate(hashUint(uint64(k)))]
}

func (s *Store) checkAlive() error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.dead {
		return ErrDead
	}
	return nil
}

// Kill makes all operations fail with ErrDead until Revive (models a
// version-store crash; recovery is by generation bump, §4.4).
func (s *Store) Kill() {
	s.mu.Lock()
	s.dead = true
	s.mu.Unlock()
	for _, sh := range s.shards {
		sh.wakeAll()
	}
}

// Revive brings a killed store back empty (its memory is gone).
func (s *Store) Revive() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range s.shards {
		s.shards[i] = newShard()
	}
	s.dead = false
}

// Flush clears all counters (generation change on a subscriber).
func (s *Store) Flush() {
	for _, sh := range s.shards {
		sh.flush()
	}
}

// LockWrites acquires the write-dependency locks in sorted key order,
// returning the ordered keys for UnlockWrites. Duplicate keys are
// acquired once.
func (s *Store) LockWrites(keys []Key) ([]Key, error) {
	if err := s.checkAlive(); err != nil {
		return nil, err
	}
	uniq := dedupSorted(keys)
	// One batched lock script round trip (the 2PC steps of §4.2 each
	// cost a version-store round trip).
	timeutil.Wait(s.cfg.scriptCost(len(uniq)), s.cfg.Precise)
	for _, k := range uniq {
		s.shardFor(k).lock(k)
	}
	return uniq, nil
}

// UnlockWrites releases locks taken by LockWrites. The unlock round
// trip is charged after the locks are released so it never extends the
// critical section.
func (s *Store) UnlockWrites(keys []Key) {
	for i := len(keys) - 1; i >= 0; i-- {
		s.shardFor(keys[i]).unlock(keys[i])
	}
	timeutil.Wait(s.cfg.scriptCost(len(keys)), s.cfg.Precise)
}

// Bump runs the publisher counter update of §4.2 for one operation:
// for every dependency, ops is incremented; for write dependencies,
// version is set to ops. The returned map holds the version to embed in
// the message: version for read dependencies, version−1 for writes.
// Write-dependency locks must be held by the caller.
//
// A key listed as both read and write dependency is treated as a write.
// Each shard touched costs one script round trip.
func (s *Store) Bump(readDeps, writeDeps []Key) (map[Key]uint64, error) {
	if err := s.checkAlive(); err != nil {
		return nil, err
	}
	writes := make(map[Key]struct{}, len(writeDeps))
	for _, k := range writeDeps {
		writes[k] = struct{}{}
	}
	// Group keys per shard so each shard executes one atomic script.
	type op struct {
		key   Key
		write bool
	}
	byShard := make(map[*shard][]op)
	seen := make(map[Key]struct{})
	addKey := func(k Key, write bool) {
		if _, dup := seen[k]; dup {
			return
		}
		seen[k] = struct{}{}
		sh := s.shardFor(k)
		byShard[sh] = append(byShard[sh], op{key: k, write: write})
	}
	for _, k := range writeDeps {
		addKey(k, true)
	}
	for _, k := range readDeps {
		if _, isWrite := writes[k]; !isWrite {
			addKey(k, false)
		}
	}

	// Shards execute their scripts concurrently in a real deployment
	// (pipelined round trips), so the injected latency is the slowest
	// shard's cost, charged once, rather than the sum.
	var cost time.Duration
	for _, ops := range byShard {
		if c := s.cfg.scriptCost(len(ops)); c > cost {
			cost = c
		}
	}
	timeutil.Wait(cost, s.cfg.Precise)
	out := make(map[Key]uint64, len(seen))
	for sh, ops := range byShard {
		sh.script(0, func(m map[Key]*entry) {
			for _, o := range ops {
				e := m[o.key]
				if e == nil {
					e = &entry{}
					m[o.key] = e
				}
				e.ops++
				if o.write {
					e.version = e.ops
					out[o.key] = e.version - 1
				} else {
					out[o.key] = e.version
				}
			}
		})
	}
	return out, nil
}

// Counters returns the publisher counters for a key (zero when absent).
func (s *Store) Counters(k Key) Counters {
	var out Counters
	s.shardFor(k).script(0, func(m map[Key]*entry) {
		if e := m[k]; e != nil {
			out = Counters{Ops: e.ops, Version: e.version}
		}
	})
	return out
}

// Ops returns the subscriber-side ops counter for a key.
func (s *Store) Ops(k Key) uint64 {
	var out uint64
	s.shardFor(k).script(0, func(m map[Key]*entry) {
		if e := m[k]; e != nil {
			out = e.ops
		}
	})
	return out
}

// IncrOps increments the subscriber ops counter for every key (after a
// message is processed) and wakes waiters. Keys sharing a shard are
// applied in one script.
func (s *Store) IncrOps(keys []Key) error {
	if err := s.checkAlive(); err != nil {
		return err
	}
	byShard := make(map[*shard][]Key)
	for _, k := range dedupSorted(keys) {
		sh := s.shardFor(k)
		byShard[sh] = append(byShard[sh], k)
	}
	// One pipelined round trip: charge the slowest shard's cost once.
	var cost time.Duration
	for _, ks := range byShard {
		if c := s.cfg.scriptCost(len(ks)); c > cost {
			cost = c
		}
	}
	timeutil.Wait(cost, s.cfg.Precise)
	for sh, ks := range byShard {
		sh.script(0, func(m map[Key]*entry) {
			for _, k := range ks {
				e := m[k]
				if e == nil {
					e = &entry{}
					m[k] = e
				}
				e.ops++
			}
		})
		sh.wakeKeys(ks)
	}
	return nil
}

// SetOps raises the ops counter for a key to at least val (bulk version
// load during bootstrap; max-merge so late loads cannot regress).
func (s *Store) SetOps(k Key, val uint64) error {
	if err := s.checkAlive(); err != nil {
		return err
	}
	sh := s.shardFor(k)
	timeutil.Wait(s.cfg.scriptCost(1), s.cfg.Precise)
	sh.script(0, func(m map[Key]*entry) {
		e := m[k]
		if e == nil {
			e = &entry{}
			m[k] = e
		}
		if val > e.ops {
			e.ops = val
		}
	})
	sh.wakeKeys([]Key{k})
	return nil
}

// WaitAtLeast blocks until the ops counter for the key reaches min, the
// timeout elapses (ErrTimeout), or the store dies (ErrDead). A zero
// timeout checks once without blocking; a negative timeout waits
// forever. This is the subscriber's dependency wait (§4.2), with the
// configurable give-up recommended in §6.5.
func (s *Store) WaitAtLeast(k Key, min uint64, timeout time.Duration) error {
	if min == 0 {
		return s.checkAlive()
	}
	sh := s.shardFor(k)
	var deadline time.Time
	if timeout > 0 {
		deadline = time.Now().Add(timeout)
	}
	for {
		if err := s.checkAlive(); err != nil {
			return err
		}
		// Register before checking so a concurrent IncrOps between the
		// check and the wait cannot be lost.
		ch := sh.register(k)
		var cur uint64
		sh.script(0, func(m map[Key]*entry) {
			if e := m[k]; e != nil {
				cur = e.ops
			}
		})
		if cur >= min {
			sh.deregister(k, ch)
			return nil
		}
		if timeout == 0 {
			sh.deregister(k, ch)
			return ErrTimeout
		}
		var waitFor time.Duration = -1
		if timeout > 0 {
			waitFor = time.Until(deadline)
			if waitFor <= 0 {
				sh.deregister(k, ch)
				return ErrTimeout
			}
		}
		if !await(ch, waitFor) {
			sh.deregister(k, ch)
			return ErrTimeout
		}
	}
}

// ApplyIfNewer implements weak-mode last-writer-wins: it atomically
// checks whether version is newer than the stored version for the
// object key and records it if so. Returns applied=false when the
// message is stale and must be discarded (§4.2, weak delivery), plus
// the previously stored version so a failed apply can be rolled back
// with RestoreVersion.
func (s *Store) ApplyIfNewer(k Key, version uint64) (applied bool, prev uint64, err error) {
	if err := s.checkAlive(); err != nil {
		return false, 0, err
	}
	timeutil.Wait(s.cfg.scriptCost(1), s.cfg.Precise)
	s.shardFor(k).script(0, func(m map[Key]*entry) {
		e := m[k]
		if e == nil {
			e = &entry{}
			m[k] = e
		}
		prev = e.version
		if version > e.version {
			e.version = version
			applied = true
		}
	})
	return applied, prev, nil
}

// RestoreVersion rolls a claimed object version back to prev, but only
// if the stored version still equals expect — a compare-and-set used
// when the apply guarded by ApplyIfNewer failed and the message will be
// redelivered. If another (newer) claim landed in between, the rollback
// is skipped: the newer version legitimately owns the object.
func (s *Store) RestoreVersion(k Key, expect, prev uint64) error {
	if err := s.checkAlive(); err != nil {
		return err
	}
	s.shardFor(k).script(0, func(m map[Key]*entry) {
		if e := m[k]; e != nil && e.version == expect {
			e.version = prev
		}
	})
	return nil
}

// Snapshot copies all counters (publisher bulk-send during bootstrap).
func (s *Store) Snapshot() (map[Key]Counters, error) {
	if err := s.checkAlive(); err != nil {
		return nil, err
	}
	out := make(map[Key]Counters)
	for _, sh := range s.shards {
		sh.script(s.cfg.scriptCost(1), func(m map[Key]*entry) {
			for k, e := range m {
				out[k] = Counters{Ops: e.ops, Version: e.version}
			}
		})
	}
	return out, nil
}

// Entries reports the number of tracked keys across shards.
func (s *Store) Entries() int {
	n := 0
	for _, sh := range s.shards {
		sh.script(0, func(m map[Key]*entry) { n += len(m) })
	}
	return n
}

func dedupSorted(keys []Key) []Key {
	uniq := make([]Key, 0, len(keys))
	seen := make(map[Key]struct{}, len(keys))
	for _, k := range keys {
		if _, ok := seen[k]; !ok {
			seen[k] = struct{}{}
			uniq = append(uniq, k)
		}
	}
	sort.Slice(uniq, func(i, j int) bool { return uniq[i] < uniq[j] })
	return uniq
}
