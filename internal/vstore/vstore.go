// Package vstore implements Synapse's version store (Redis in the
// paper's deployment): the sharded counter service behind the update
// delivery mechanism of §4.2.
//
// For every dependency key the publisher side keeps two counters — ops,
// the number of operations that have referenced the object, and version,
// the object's version — while the subscriber side keeps the latest ops
// counter. All multi-key operations execute atomically within a shard
// (the stand-in for Redis LUA scripts); keys are spread across shards
// with a Dynamo-style consistent-hash ring, and cross-shard lock
// acquisition is ordered to avoid deadlock.
//
// Dependency names are hashed into a fixed-cardinality key space so
// every version store consumes O(1) memory (§4.2, "Scaling the Version
// Store"); a cardinality of 1 degenerates to global ordering, which the
// ablation benchmark exploits.
//
// The hot-path entry points are the batched round-trip plans —
// BumpBatch on the publisher side, WaitAtLeastMulti and ApplyBatch on
// the subscriber side — which amortize a whole message's dependency
// traffic into one scripted round trip per shard, the way the paper
// batches version-store commands into LUA scripts and pipelines them.
// The per-key operations (LockWrites/Bump, WaitAtLeast, ApplyIfNewer,
// IncrOps) remain as the reference implementation the batch paths are
// property-tested against, and as the unbatched ablation the Fig 13
// round-trip benchmark compares with.
//
// An injectable per-script round-trip latency models the network cost of
// a remote Redis, and Kill/Revive model version-store death for the
// generation-number recovery path (§4.4). Round-trip windows are counted
// (RoundTrips) so benchmarks can report round trips per message.
package vstore

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"synapse/internal/timeutil"
)

// ErrDead is returned while the store is killed (crash injection).
var ErrDead = errors.New("vstore: store is dead")

// ErrTimeout is returned when WaitAtLeast exceeds its deadline.
var ErrTimeout = errors.New("vstore: dependency wait timed out")

// WaitReq is one unmet dependency at the moment a wait gave up: the
// key, the ops counter the wait required, and the counter the store
// actually held at the last check.
type WaitReq struct {
	Key  Key
	Need uint64
	Have uint64
}

// WaitError is the timeout error returned by WaitAtLeast and
// WaitAtLeastMulti. It names every dependency key still blocking the
// wait (with required and observed counters) so a causality stall can
// be diagnosed from a dead-letter record instead of a bare timeout. It
// unwraps to ErrTimeout, so errors.Is(err, ErrTimeout) keeps matching.
type WaitError struct {
	// Unmet lists the blocking keys in ascending key order.
	Unmet []WaitReq
}

func (e *WaitError) Error() string {
	var b strings.Builder
	b.WriteString("vstore: dependency wait timed out: ")
	const show = 4
	for i, r := range e.Unmet {
		if i == show {
			fmt.Fprintf(&b, " (+%d more)", len(e.Unmet)-show)
			break
		}
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "key %d at %d/%d", uint64(r.Key), r.Have, r.Need)
	}
	return b.String()
}

// Unwrap keeps WaitError compatible with errors.Is(err, ErrTimeout).
func (e *WaitError) Unwrap() error { return ErrTimeout }

// waitTimeout builds the single-key WaitError.
func waitTimeout(k Key, need, have uint64) error {
	return &WaitError{Unmet: []WaitReq{{Key: k, Need: need, Have: have}}}
}

// Key is a hashed dependency key.
type Key uint64

// Counters is the publisher-side per-dependency state.
type Counters struct {
	Ops     uint64
	Version uint64
}

// Config sizes a store.
type Config struct {
	// Shards is the number of shard instances (>=1).
	Shards int
	// Cardinality bounds the dependency hash space; 0 means unhashed
	// (the raw 64-bit space). 1 serializes everything (global ordering).
	Cardinality uint64
	// RTT is injected once per shard script call, modelling the network
	// round trip to a remote store. Zero for unit tests.
	RTT time.Duration
	// Precise busy-waits injected latencies instead of sleeping, for
	// sub-millisecond accuracy on sequential measurement paths. Never
	// enable it for many-worker runs: spinning burns a core per waiter.
	Precise bool
	// PerKey is injected per key touched by a script call, modelling
	// Redis command processing and payload cost; it produces the
	// linear tail of the Fig 13(a) overhead curve at high dependency
	// counts. Zero for unit tests.
	PerKey time.Duration
}

// scriptCost computes the injected latency for a script touching n keys.
func (c Config) scriptCost(n int) time.Duration {
	return c.RTT + time.Duration(n)*c.PerKey
}

// Store is one version store (publisher-side or subscriber-side; the
// same structure serves both roles).
type Store struct {
	cfg    Config
	ring   *ring
	shards []*shard

	// rt counts client-visible round-trip windows. Scripts pipelined to
	// several shards in one window (the Redis pipelining the paper uses)
	// count once; sequential script calls count once each. The counter
	// advances even when the injected latency is zero, so unit-scale runs
	// can still assert round-trip plans.
	rt atomic.Uint64

	mu        sync.RWMutex
	dead      bool
	transport Transport
}

// Transport models the network hop between a client and the store:
// consulted once per client-visible round-trip window, BEFORE any
// state is touched, so a transport failure (drop, partition) leaves
// the store unmutated and the round trip safe to retry. A nil
// transport is a perfect network.
type Transport func() error

// SetTransport installs (or clears, with nil) the network hop. Install
// before the store sees traffic.
func (s *Store) SetTransport(t Transport) {
	s.mu.Lock()
	s.transport = t
	s.mu.Unlock()
}

// New builds a store from the config.
func New(cfg Config) *Store {
	if cfg.Shards < 1 {
		cfg.Shards = 1
	}
	s := &Store{cfg: cfg, ring: newRing(cfg.Shards)}
	for i := 0; i < cfg.Shards; i++ {
		s.shards = append(s.shards, newShard())
	}
	return s
}

// Config returns the store's configuration.
func (s *Store) Config() Config { return s.cfg }

// RoundTrips reports the number of round-trip windows performed since
// construction. Benchmarks diff it across a run to compute round trips
// per message.
func (s *Store) RoundTrips() uint64 { return s.rt.Load() }

// charge accounts one round-trip window and injects its latency.
func (s *Store) charge(cost time.Duration) {
	s.rt.Add(1)
	timeutil.Wait(cost, s.cfg.Precise)
}

// KeyFor hashes a dependency name into the store's key space.
func (s *Store) KeyFor(name string) Key {
	h := hashString(name)
	if s.cfg.Cardinality > 0 {
		h %= s.cfg.Cardinality
	}
	return Key(h)
}

func (s *Store) shardFor(k Key) *shard {
	return s.shards[s.ring.locate(hashUint(uint64(k)))]
}

func (s *Store) checkAlive() error {
	s.mu.RLock()
	dead := s.dead
	t := s.transport
	s.mu.RUnlock()
	if dead {
		return ErrDead
	}
	// The transport call (which may sleep in retry backoff) runs outside
	// the lock so it never delays Kill/Revive.
	if t != nil {
		return t()
	}
	return nil
}

// Kill makes all operations fail with ErrDead until Revive (models a
// version-store crash; recovery is by generation bump, §4.4).
func (s *Store) Kill() {
	s.mu.Lock()
	s.dead = true
	s.mu.Unlock()
	for _, sh := range s.shards {
		sh.wakeAll()
	}
}

// Revive brings a killed store back empty (its counter memory is
// gone). Shards are reset in place, never replaced: the shard slice is
// read lock-free on every hot path (shardFor) and by Kill, so it must
// be immutable after New. Cooperative key locks survive the reset —
// they model client-held leases, and a holder blocked through the
// outage must still be able to release once the store answers again.
func (s *Store) Revive() {
	for _, sh := range s.shards {
		sh.flush()
	}
	s.mu.Lock()
	s.dead = false
	s.mu.Unlock()
}

// Flush clears all counters (generation change on a subscriber).
func (s *Store) Flush() {
	for _, sh := range s.shards {
		sh.flush()
	}
}

// lockOrdered is the single place that defines the deadlock-free locking
// protocol: cooperative key locks are always acquired in deduplicated
// ascending key order, so two holders can never wait on each other in a
// cycle regardless of the order callers list their keys in. Every path
// that takes write locks (LockWrites, BumpBatch) goes through it. It
// returns the held keys in acquisition order for unlockOrdered.
func (s *Store) lockOrdered(keys []Key) []Key {
	held := dedupSorted(keys)
	for _, k := range held {
		s.shardFor(k).lock(k)
	}
	return held
}

// unlockOrdered releases locks taken by lockOrdered, in reverse
// acquisition order. It must be passed the exact slice lockOrdered
// returned.
func (s *Store) unlockOrdered(held []Key) {
	for i := len(held) - 1; i >= 0; i-- {
		s.shardFor(held[i]).unlock(held[i])
	}
}

// LockWrites acquires the write-dependency locks in sorted key order
// (see lockOrdered), returning the ordered keys for UnlockWrites.
// Duplicate keys are acquired once.
func (s *Store) LockWrites(keys []Key) ([]Key, error) {
	if err := s.checkAlive(); err != nil {
		return nil, err
	}
	uniq := dedupSorted(keys)
	// One batched lock script round trip (the 2PC steps of §4.2 each
	// cost a version-store round trip).
	s.charge(s.cfg.scriptCost(len(uniq)))
	for _, k := range uniq {
		s.shardFor(k).lock(k)
	}
	return uniq, nil
}

// UnlockWrites releases locks taken by LockWrites (it must be passed
// the slice LockWrites returned, which is already in the canonical
// sorted order). The unlock round trip is charged after the locks are
// released so it never extends the critical section.
func (s *Store) UnlockWrites(keys []Key) {
	s.unlockOrdered(keys)
	s.charge(s.cfg.scriptCost(len(keys)))
}

// Bump runs the publisher counter update of §4.2 for one operation:
// for every dependency, ops is incremented; for write dependencies,
// version is set to ops. The returned map holds the version to embed in
// the message: version for read dependencies, version−1 for writes.
// Write-dependency locks must be held by the caller.
//
// A key listed as both read and write dependency is treated as a write.
// Each shard touched costs one script round trip.
func (s *Store) Bump(readDeps, writeDeps []Key) (map[Key]uint64, error) {
	if err := s.checkAlive(); err != nil {
		return nil, err
	}
	byShard, n := s.groupBumpOps(readDeps, writeDeps)
	// Shards execute their scripts concurrently in a real deployment
	// (pipelined round trips), so the injected latency is the slowest
	// shard's cost, charged once, rather than the sum.
	s.charge(s.maxShardCost(byShard))
	return s.runBumpScripts(byShard, n), nil
}

// bumpOp is one key touched by a bump script, with its read/write role.
type bumpOp struct {
	key   Key
	write bool
}

// groupBumpOps dedups the dependency keys (writes win over reads) and
// groups them per shard so each shard executes one atomic script.
func (s *Store) groupBumpOps(readDeps, writeDeps []Key) (map[*shard][]bumpOp, int) {
	writes := make(map[Key]struct{}, len(writeDeps))
	for _, k := range writeDeps {
		writes[k] = struct{}{}
	}
	byShard := make(map[*shard][]bumpOp)
	seen := make(map[Key]struct{})
	addKey := func(k Key, write bool) {
		if _, dup := seen[k]; dup {
			return
		}
		seen[k] = struct{}{}
		sh := s.shardFor(k)
		byShard[sh] = append(byShard[sh], bumpOp{key: k, write: write})
	}
	for _, k := range writeDeps {
		addKey(k, true)
	}
	for _, k := range readDeps {
		if _, isWrite := writes[k]; !isWrite {
			addKey(k, false)
		}
	}
	return byShard, len(seen)
}

// maxShardCost is the injected latency of one pipelined window: the
// slowest shard script's cost.
func (s *Store) maxShardCost(byShard map[*shard][]bumpOp) time.Duration {
	var cost time.Duration
	for _, ops := range byShard {
		if c := s.cfg.scriptCost(len(ops)); c > cost {
			cost = c
		}
	}
	return cost
}

// runBumpScripts executes the §4.2 counter update on every shard and
// collects the versions to embed in the message.
func (s *Store) runBumpScripts(byShard map[*shard][]bumpOp, n int) map[Key]uint64 {
	out := make(map[Key]uint64, n)
	for sh, ops := range byShard {
		sh.script(0, func(m map[Key]*entry) {
			for _, o := range ops {
				e := m[o.key]
				if e == nil {
					e = &entry{}
					m[o.key] = e
				}
				e.ops++
				if o.write {
					e.version = e.ops
					out[o.key] = e.version - 1
				} else {
					out[o.key] = e.version
				}
			}
		})
	}
	return out
}

// Batch is a publisher round-trip plan in flight: the versions returned
// by BumpBatch plus the write locks held until Release. It is the
// batched replacement for the LockWrites → Bump → UnlockWrites chain.
type Batch struct {
	store    *Store
	held     []Key
	released bool
	// Versions holds the version to embed in the message for every
	// dependency key: version for reads, version−1 for writes (§4.2).
	Versions map[Key]uint64
}

// BumpBatch runs the whole publisher counter update of §4.2 as one
// scripted round trip per shard (the paper's Redis LUA scripts): it
// acquires the dependency locks in the canonical deadlock-free order
// (lockOrdered), increments ops, sets version for write dependencies,
// and collects the versions to embed — all within a single pipelined
// round-trip window, instead of the separate lock and bump windows of
// the legacy chain. Locks cover reads and writes, like the callers of
// LockWrites did, so broker queue order stays consistent with
// dependency order; they are held until Release.
func (s *Store) BumpBatch(readDeps, writeDeps []Key) (*Batch, error) {
	if err := s.checkAlive(); err != nil {
		return nil, err
	}
	byShard, n := s.groupBumpOps(readDeps, writeDeps)
	// The whole plan is ONE pipelined round-trip window: the injected
	// RTT models the network flight to the store, so it is charged
	// BEFORE the locks are taken — server-side, the script acquires the
	// locks and bumps the counters back to back. Charging it after
	// acquisition (as this path once did) held every hot dependency key
	// locked across the sleep, serializing concurrent publishers to the
	// same popular object for an extra RTT each and convoying the
	// publish path under zipf-skewed traffic.
	s.charge(s.maxShardCost(byShard))
	all := make([]Key, 0, len(readDeps)+len(writeDeps))
	all = append(all, writeDeps...)
	all = append(all, readDeps...)
	held := s.lockOrdered(all)
	if err := s.checkAlive(); err != nil {
		// The store died while we waited for a lock holder; hand back
		// the locks rather than versions from a dead store.
		s.unlockOrdered(held)
		return nil, err
	}
	return &Batch{store: s, held: held, Versions: s.runBumpScripts(byShard, n)}, nil
}

// Release unlocks the batch's write locks (reverse acquisition order)
// and charges the unlock round trip after the locks are down, so it
// never extends the critical section. Safe to call more than once.
func (b *Batch) Release() {
	if b.released {
		return
	}
	b.released = true
	b.store.unlockOrdered(b.held)
	b.store.charge(b.store.cfg.scriptCost(len(b.held)))
}

// Counters returns the publisher counters for a key (zero when absent).
func (s *Store) Counters(k Key) Counters {
	var out Counters
	s.rt.Add(1)
	s.shardFor(k).rscript(0, func(m map[Key]*entry) {
		if e := m[k]; e != nil {
			out = Counters{Ops: e.ops, Version: e.version}
		}
	})
	return out
}

// Ops returns the subscriber-side ops counter for a key.
func (s *Store) Ops(k Key) uint64 {
	var out uint64
	s.rt.Add(1)
	s.shardFor(k).rscript(0, func(m map[Key]*entry) {
		if e := m[k]; e != nil {
			out = e.ops
		}
	})
	return out
}

// IncrOps increments the subscriber ops counter for every key (after a
// message is processed) and wakes waiters. Keys sharing a shard are
// applied in one script.
func (s *Store) IncrOps(keys []Key) error {
	if err := s.checkAlive(); err != nil {
		return err
	}
	byShard := make(map[*shard][]Key)
	for _, k := range dedupSorted(keys) {
		sh := s.shardFor(k)
		byShard[sh] = append(byShard[sh], k)
	}
	// One pipelined round trip: charge the slowest shard's cost once.
	var cost time.Duration
	for _, ks := range byShard {
		if c := s.cfg.scriptCost(len(ks)); c > cost {
			cost = c
		}
	}
	s.charge(cost)
	for sh, ks := range byShard {
		vals := make([]uint64, len(ks))
		sh.script(0, func(m map[Key]*entry) {
			for i, k := range ks {
				e := m[k]
				if e == nil {
					e = &entry{}
					m[k] = e
				}
				e.ops++
				vals[i] = e.ops
			}
		})
		sh.wakeReached(ks, vals)
	}
	return nil
}

// IncrOpsMulti applies many messages' worth of counter increments in
// one pipelined round-trip window. counts maps each key to the number
// of completed messages that bumped it, so a key shared by k messages
// advances by k — unlike IncrOps, which dedups within a single
// message's key set. This is the cross-message group-commit plan
// behind the subscriber's apply pipeline: equivalent to one IncrOps
// call per message, but charged a single window, with waiters woken on
// the final post-increment values (threshold-aware waiters only fire
// once their target version is actually reached).
func (s *Store) IncrOpsMulti(counts map[Key]uint64) error {
	keys := make([]Key, 0, len(counts))
	for k, n := range counts {
		if n > 0 {
			keys = append(keys, k)
		}
	}
	if len(keys) == 0 {
		return nil
	}
	if err := s.checkAlive(); err != nil {
		return err
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	byShard := make(map[*shard][]Key)
	for _, k := range keys {
		sh := s.shardFor(k)
		byShard[sh] = append(byShard[sh], k)
	}
	// One pipelined round trip: charge the slowest shard's cost once.
	var cost time.Duration
	for _, ks := range byShard {
		if c := s.cfg.scriptCost(len(ks)); c > cost {
			cost = c
		}
	}
	s.charge(cost)
	for sh, ks := range byShard {
		vals := make([]uint64, len(ks))
		sh.script(0, func(m map[Key]*entry) {
			for i, k := range ks {
				e := m[k]
				if e == nil {
					e = &entry{}
					m[k] = e
				}
				e.ops += counts[k]
				vals[i] = e.ops
			}
		})
		sh.wakeReached(ks, vals)
	}
	return nil
}

// SetOps raises the ops counter for a key to at least val (bulk version
// load during bootstrap; max-merge so late loads cannot regress).
func (s *Store) SetOps(k Key, val uint64) error {
	if err := s.checkAlive(); err != nil {
		return err
	}
	sh := s.shardFor(k)
	s.charge(s.cfg.scriptCost(1))
	var cur uint64
	sh.script(0, func(m map[Key]*entry) {
		e := m[k]
		if e == nil {
			e = &entry{}
			m[k] = e
		}
		if val > e.ops {
			e.ops = val
		}
		cur = e.ops
	})
	sh.wakeReached([]Key{k}, []uint64{cur})
	return nil
}

// SetOpsMulti raises many keys' ops counters to at least their mapped
// values in one pipelined round-trip window (max-merge per key, like
// SetOps). This is the bulk version load of a bootstrap: equivalent to
// one SetOps call per key, but charged a single window instead of one
// per counter.
func (s *Store) SetOpsMulti(vals map[Key]uint64) error {
	if len(vals) == 0 {
		return nil
	}
	if err := s.checkAlive(); err != nil {
		return err
	}
	keys := make([]Key, 0, len(vals))
	for k := range vals {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	byShard := make(map[*shard][]Key)
	for _, k := range keys {
		sh := s.shardFor(k)
		byShard[sh] = append(byShard[sh], k)
	}
	// One pipelined round trip: charge the slowest shard's cost once.
	var cost time.Duration
	for _, ks := range byShard {
		if c := s.cfg.scriptCost(len(ks)); c > cost {
			cost = c
		}
	}
	s.charge(cost)
	for sh, ks := range byShard {
		out := make([]uint64, len(ks))
		sh.script(0, func(m map[Key]*entry) {
			for i, k := range ks {
				e := m[k]
				if e == nil {
					e = &entry{}
					m[k] = e
				}
				if v := vals[k]; v > e.ops {
					e.ops = v
				}
				out[i] = e.ops
			}
		})
		sh.wakeReached(ks, out)
	}
	return nil
}

// WaitAtLeast blocks until the ops counter for the key reaches min, the
// timeout elapses (a *WaitError wrapping ErrTimeout, naming the
// blocking key and its counters), or the store dies (ErrDead). A zero
// timeout checks once without blocking; a negative timeout waits
// forever. This is the subscriber's dependency wait (§4.2), with the
// configurable give-up recommended in §6.5.
func (s *Store) WaitAtLeast(k Key, min uint64, timeout time.Duration) error {
	if min == 0 {
		return s.checkAlive()
	}
	sh := s.shardFor(k)
	var deadline time.Time
	if timeout > 0 {
		deadline = time.Now().Add(timeout)
	}
	for {
		if err := s.checkAlive(); err != nil {
			return err
		}
		// Register (with the needed threshold) before checking so a
		// concurrent IncrOps between the check and the wait cannot be
		// lost; increments below the threshold won't wake us.
		ch := sh.register(k, min)
		var cur uint64
		s.rt.Add(1)
		sh.rscript(0, func(m map[Key]*entry) {
			if e := m[k]; e != nil {
				cur = e.ops
			}
		})
		if cur >= min {
			sh.deregister(k, ch)
			return nil
		}
		if timeout == 0 {
			sh.deregister(k, ch)
			return waitTimeout(k, min, cur)
		}
		var waitFor time.Duration = -1
		if timeout > 0 {
			waitFor = time.Until(deadline)
			if waitFor <= 0 {
				sh.deregister(k, ch)
				return waitTimeout(k, min, cur)
			}
		}
		if !await(ch, waitFor) {
			sh.deregister(k, ch)
			return waitTimeout(k, min, cur)
		}
	}
}

// WaitAtLeastMulti blocks until the ops counter of EVERY key in reqs
// reaches its required minimum, the timeout elapses (a *WaitError
// wrapping ErrTimeout, naming every still-blocking key), or the store
// dies (ErrDead). It is the batched replacement for one WaitAtLeast
// call per dependency: a single waiter is registered for the whole
// dependency map, and each check is one pipelined round trip over the
// shards involved instead of one per key. Zero-minimum entries are
// satisfied without any round trip. Timeout semantics follow
// WaitAtLeast, applied to the map as a whole (a zero timeout checks
// once; a negative timeout waits forever).
func (s *Store) WaitAtLeastMulti(reqs map[Key]uint64, timeout time.Duration) error {
	remaining := make(map[Key]uint64, len(reqs))
	for k, min := range reqs {
		if min > 0 {
			remaining[k] = min
		}
	}
	if len(remaining) == 0 {
		return s.checkAlive()
	}
	// have tracks the last observed ops counter for each outstanding key
	// so a timeout can report how far short every blocker was.
	have := make(map[Key]uint64, len(remaining))
	unmet := func() error {
		e := &WaitError{Unmet: make([]WaitReq, 0, len(remaining))}
		for k, need := range remaining {
			e.Unmet = append(e.Unmet, WaitReq{Key: k, Need: need, Have: have[k]})
		}
		sort.Slice(e.Unmet, func(i, j int) bool { return e.Unmet[i].Key < e.Unmet[j].Key })
		return e
	}
	var deadline time.Time
	if timeout > 0 {
		deadline = time.Now().Add(timeout)
	}
	for {
		if err := s.checkAlive(); err != nil {
			return err
		}
		// One shared waiter channel, registered on every outstanding key
		// BEFORE the check so no concurrent IncrOps wakeup can be lost.
		// Each registration carries that key's threshold: on a hot key
		// whose counter advances constantly, only the increment that
		// reaches the threshold wakes this waiter.
		ch := make(chan struct{}, 1)
		regd := make([]Key, 0, len(remaining))
		byShard := make(map[*shard][]Key)
		for k, min := range remaining {
			sh := s.shardFor(k)
			sh.registerCh(k, min, ch)
			regd = append(regd, k)
			byShard[sh] = append(byShard[sh], k)
		}
		deregister := func() {
			for _, k := range regd {
				s.shardFor(k).deregister(k, ch)
			}
		}
		// One pipelined check window over all shards involved.
		var cost time.Duration
		for _, ks := range byShard {
			if c := s.cfg.scriptCost(len(ks)); c > cost {
				cost = c
			}
		}
		s.charge(cost)
		var satisfied []Key
		for sh, ks := range byShard {
			sh.rscript(0, func(m map[Key]*entry) {
				for _, k := range ks {
					e := m[k]
					var cur uint64
					if e != nil {
						cur = e.ops
					}
					have[k] = cur
					if cur >= remaining[k] {
						satisfied = append(satisfied, k)
					}
				}
			})
		}
		for _, k := range satisfied {
			delete(remaining, k)
		}
		if len(remaining) == 0 {
			deregister()
			return nil
		}
		if timeout == 0 {
			deregister()
			return unmet()
		}
		var waitFor time.Duration = -1
		if timeout > 0 {
			waitFor = time.Until(deadline)
			if waitFor <= 0 {
				deregister()
				return unmet()
			}
		}
		ok := await(ch, waitFor)
		deregister()
		if !ok {
			return unmet()
		}
	}
}

// ApplyIfNewer implements weak-mode last-writer-wins: it atomically
// checks whether version is newer than the stored version for the
// object key and records it if so. Returns applied=false when the
// message is stale and must be discarded (§4.2, weak delivery), plus
// the previously stored version so a failed apply can be rolled back
// with RestoreVersion.
func (s *Store) ApplyIfNewer(k Key, version uint64) (applied bool, prev uint64, err error) {
	if err := s.checkAlive(); err != nil {
		return false, 0, err
	}
	s.charge(s.cfg.scriptCost(1))
	s.shardFor(k).script(0, func(m map[Key]*entry) {
		e := m[k]
		if e == nil {
			e = &entry{}
			m[k] = e
		}
		prev = e.version
		if version > e.version {
			e.version = version
			applied = true
		}
	})
	return applied, prev, nil
}

// RestoreVersion rolls a claimed object version back to prev, but only
// if the stored version still equals expect — a compare-and-set used
// when the apply guarded by ApplyIfNewer failed and the message will be
// redelivered. If another (newer) claim landed in between, the rollback
// is skipped: the newer version legitimately owns the object.
func (s *Store) RestoreVersion(k Key, expect, prev uint64) error {
	if err := s.checkAlive(); err != nil {
		return err
	}
	s.rt.Add(1)
	s.shardFor(k).script(0, func(m map[Key]*entry) {
		if e := m[k]; e != nil && e.version == expect {
			e.version = prev
		}
	})
	return nil
}

// Claim is one per-object version claim for ApplyBatch: the object's
// dependency key and the post-write version the message carries.
type Claim struct {
	Key     Key
	Version uint64
}

// ClaimResult mirrors ApplyIfNewer's result for one claim of a batch.
type ClaimResult struct {
	Applied bool
	Prev    uint64
}

// ApplyBatch runs the ApplyIfNewer check-and-claim for a whole
// message's operations in one pipelined round trip (one atomic script
// per shard), the subscriber-side counterpart of BumpBatch. Claims are
// evaluated in slice order, so several claims on the same key behave
// exactly like sequential ApplyIfNewer calls. A failed apply is rolled
// back per claim with RestoreVersion, as before.
func (s *Store) ApplyBatch(claims []Claim) ([]ClaimResult, error) {
	if err := s.checkAlive(); err != nil {
		return nil, err
	}
	if len(claims) == 0 {
		return nil, nil
	}
	out := make([]ClaimResult, len(claims))
	byShard := make(map[*shard][]int)
	for i, c := range claims {
		sh := s.shardFor(c.Key)
		byShard[sh] = append(byShard[sh], i)
	}
	var cost time.Duration
	for _, idxs := range byShard {
		if c := s.cfg.scriptCost(len(idxs)); c > cost {
			cost = c
		}
	}
	s.charge(cost)
	for sh, idxs := range byShard {
		sh.script(0, func(m map[Key]*entry) {
			for _, i := range idxs {
				c := claims[i]
				e := m[c.Key]
				if e == nil {
					e = &entry{}
					m[c.Key] = e
				}
				out[i].Prev = e.version
				if c.Version > e.version {
					e.version = c.Version
					out[i].Applied = true
				}
			}
		})
	}
	return out, nil
}

// Snapshot copies all counters (publisher bulk-send during bootstrap).
func (s *Store) Snapshot() (map[Key]Counters, error) {
	if err := s.checkAlive(); err != nil {
		return nil, err
	}
	out := make(map[Key]Counters)
	for _, sh := range s.shards {
		s.rt.Add(1)
		sh.rscript(s.cfg.scriptCost(1), func(m map[Key]*entry) {
			for k, e := range m {
				out[k] = Counters{Ops: e.ops, Version: e.version}
			}
		})
	}
	return out, nil
}

// Entries reports the number of tracked keys across shards.
func (s *Store) Entries() int {
	n := 0
	for _, sh := range s.shards {
		sh.rscript(0, func(m map[Key]*entry) { n += len(m) })
	}
	return n
}

func dedupSorted(keys []Key) []Key {
	uniq := make([]Key, 0, len(keys))
	seen := make(map[Key]struct{}, len(keys))
	for _, k := range keys {
		if _, ok := seen[k]; !ok {
			seen[k] = struct{}{}
			uniq = append(uniq, k)
		}
	}
	sort.Slice(uniq, func(i, j int) bool { return uniq[i] < uniq[j] })
	return uniq
}
