package vstore

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func newStore() *Store { return New(Config{Shards: 4}) }

// TestFig8Counters replays the exact trace of Fig 8 against the
// publisher algorithm and checks every counter and message version the
// paper lists.
func TestFig8Counters(t *testing.T) {
	s := New(Config{Shards: 4})
	u1 := s.KeyFor("app/users/id/1")
	u2 := s.KeyFor("app/users/id/2")
	p1 := s.KeyFor("app/posts/id/1")
	c1 := s.KeyFor("app/comments/id/1")
	c2 := s.KeyFor("app/comments/id/2")

	bump := func(reads, writes []Key) map[Key]uint64 {
		t.Helper()
		held, err := s.LockWrites(writes)
		if err != nil {
			t.Fatal(err)
		}
		deps, err := s.Bump(reads, writes)
		if err != nil {
			t.Fatal(err)
		}
		s.UnlockWrites(held)
		return deps
	}
	checkCounters := func(k Key, ops, version uint64, label string) {
		t.Helper()
		c := s.Counters(k)
		if c.Ops != ops || c.Version != version {
			t.Errorf("%s: counters = %+v, want ops=%d version=%d", label, c, ops, version)
		}
	}

	// W1: read [], write [u1, p1].
	m1 := bump(nil, []Key{u1, p1})
	checkCounters(u1, 1, 1, "after W1 u1")
	checkCounters(p1, 1, 1, "after W1 p1")
	if m1[u1] != 0 || m1[p1] != 0 {
		t.Errorf("M1 deps = %v, want u1:0 p1:0", m1)
	}

	// W2: read [p1], write [u2, c1].
	m2 := bump([]Key{p1}, []Key{u2, c1})
	checkCounters(u2, 1, 1, "after W2 u2")
	checkCounters(c1, 1, 1, "after W2 c1")
	checkCounters(p1, 2, 1, "after W2 p1")
	if m2[u2] != 0 || m2[c1] != 0 || m2[p1] != 1 {
		t.Errorf("M2 deps = %v, want u2:0 c1:0 p1:1", m2)
	}

	// W3: read [p1], write [u1, c2].
	m3 := bump([]Key{p1}, []Key{u1, c2})
	checkCounters(u1, 2, 2, "after W3 u1")
	checkCounters(c2, 1, 1, "after W3 c2")
	checkCounters(p1, 3, 1, "after W3 p1")
	if m3[u1] != 1 || m3[c2] != 0 || m3[p1] != 1 {
		t.Errorf("M3 deps = %v, want u1:1 c2:0 p1:1", m3)
	}

	// W4: read [], write [u1, p1].
	m4 := bump(nil, []Key{u1, p1})
	checkCounters(u1, 3, 3, "after W4 u1")
	checkCounters(p1, 4, 4, "after W4 p1")
	if m4[u1] != 2 || m4[p1] != 3 {
		t.Errorf("M4 deps = %v, want u1:2 p1:3", m4)
	}
}

func TestBumpReadAndWriteSameKey(t *testing.T) {
	s := newStore()
	k := s.KeyFor("x")
	deps, err := s.Bump([]Key{k}, []Key{k})
	if err != nil {
		t.Fatal(err)
	}
	// Treated as a write: one increment, version-1 in the message.
	if deps[k] != 0 {
		t.Errorf("deps = %v", deps)
	}
	if c := s.Counters(k); c.Ops != 1 || c.Version != 1 {
		t.Errorf("counters = %+v", c)
	}
}

func TestSubscriberWaitIncrFlow(t *testing.T) {
	s := newStore()
	k := s.KeyFor("dep")
	// min 0 never blocks.
	if err := s.WaitAtLeast(k, 0, 0); err != nil {
		t.Fatal(err)
	}
	// Unsatisfied with zero timeout: immediate ErrTimeout.
	if err := s.WaitAtLeast(k, 1, 0); !errors.Is(err, ErrTimeout) {
		t.Fatalf("WaitAtLeast = %v", err)
	}
	done := make(chan error, 1)
	go func() { done <- s.WaitAtLeast(k, 2, -1) }()
	time.Sleep(5 * time.Millisecond)
	if err := s.IncrOps([]Key{k}); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		t.Fatalf("woke too early: %v", err)
	case <-time.After(20 * time.Millisecond):
	}
	if err := s.IncrOps([]Key{k}); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("waiter never woke")
	}
	if s.Ops(k) != 2 {
		t.Errorf("Ops = %d", s.Ops(k))
	}
}

func TestWaitTimeout(t *testing.T) {
	s := newStore()
	k := s.KeyFor("dep")
	start := time.Now()
	err := s.WaitAtLeast(k, 1, 30*time.Millisecond)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v", err)
	}
	if d := time.Since(start); d < 30*time.Millisecond {
		t.Errorf("returned after %v, before the timeout", d)
	}
}

func TestNoLostWakeup(t *testing.T) {
	// Hammer the register-check-wait path against concurrent increments.
	s := New(Config{Shards: 1})
	k := s.KeyFor("dep")
	const rounds = 200
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 1; i <= rounds; i++ {
			if err := s.WaitAtLeast(k, uint64(i), 5*time.Second); err != nil {
				t.Errorf("round %d: %v", i, err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			if err := s.IncrOps([]Key{k}); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
}

func TestLockWritesMutualExclusionAcrossShards(t *testing.T) {
	s := New(Config{Shards: 4})
	keys := []Key{s.KeyFor("a"), s.KeyFor("b"), s.KeyFor("c")}
	var cur, max int
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				// Alternate acquisition orders: sorted locking must
				// prevent deadlock.
				ks := keys
				if w%2 == 1 {
					ks = []Key{keys[2], keys[0], keys[1]}
				}
				held, err := s.LockWrites(ks)
				if err != nil {
					t.Error(err)
					return
				}
				mu.Lock()
				cur++
				if cur > max {
					max = cur
				}
				mu.Unlock()
				mu.Lock()
				cur--
				mu.Unlock()
				s.UnlockWrites(held)
			}
		}(w)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("LockWrites deadlocked")
	}
	if max != 1 {
		t.Fatalf("%d holders inside full lock set", max)
	}
}

func TestApplyIfNewer(t *testing.T) {
	s := newStore()
	k := s.KeyFor("obj")
	ok, prev, err := s.ApplyIfNewer(k, 3)
	if err != nil || !ok || prev != 0 {
		t.Fatalf("first apply = %v %d %v", ok, prev, err)
	}
	// Stale and duplicate versions are discarded.
	for _, v := range []uint64{1, 2, 3} {
		if ok, _, _ := s.ApplyIfNewer(k, v); ok {
			t.Errorf("version %d applied over 3", v)
		}
	}
	ok, prev, _ = s.ApplyIfNewer(k, 4)
	if !ok || prev != 3 {
		t.Errorf("newer version = %v prev=%d", ok, prev)
	}
	// RestoreVersion rolls back a failed claim...
	if err := s.RestoreVersion(k, 4, 3); err != nil {
		t.Fatal(err)
	}
	if ok, _, _ := s.ApplyIfNewer(k, 4); !ok {
		t.Error("rolled-back version not reclaimable")
	}
	// ...but not when a newer claim has landed in between.
	_, _, _ = s.ApplyIfNewer(k, 9)
	if err := s.RestoreVersion(k, 4, 3); err != nil {
		t.Fatal(err)
	}
	if ok, _, _ := s.ApplyIfNewer(k, 5); ok {
		t.Error("stale rollback clobbered a newer claim")
	}
}

func TestSetOpsMaxMerge(t *testing.T) {
	s := newStore()
	k := s.KeyFor("dep")
	if err := s.SetOps(k, 5); err != nil {
		t.Fatal(err)
	}
	if err := s.SetOps(k, 3); err != nil {
		t.Fatal(err)
	}
	if s.Ops(k) != 5 {
		t.Errorf("Ops = %d, want 5 (max-merge)", s.Ops(k))
	}
	// SetOps wakes waiters.
	done := make(chan error, 1)
	go func() { done <- s.WaitAtLeast(k, 10, -1) }()
	time.Sleep(5 * time.Millisecond)
	_ = s.SetOps(k, 10)
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("SetOps did not wake waiter")
	}
}

func TestKillWakesWaitersAndFailsOps(t *testing.T) {
	s := newStore()
	k := s.KeyFor("dep")
	done := make(chan error, 1)
	go func() { done <- s.WaitAtLeast(k, 1, -1) }()
	time.Sleep(5 * time.Millisecond)
	s.Kill()
	select {
	case err := <-done:
		if !errors.Is(err, ErrDead) {
			t.Fatalf("waiter err = %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Kill did not wake waiter")
	}
	if err := s.IncrOps([]Key{k}); !errors.Is(err, ErrDead) {
		t.Errorf("IncrOps on dead store = %v", err)
	}
	if _, err := s.Bump(nil, []Key{k}); !errors.Is(err, ErrDead) {
		t.Errorf("Bump on dead store = %v", err)
	}
	if _, err := s.Snapshot(); !errors.Is(err, ErrDead) {
		t.Errorf("Snapshot on dead store = %v", err)
	}
	s.Revive()
	if s.Ops(k) != 0 {
		t.Error("Revive kept old state")
	}
	if err := s.IncrOps([]Key{k}); err != nil {
		t.Fatalf("IncrOps after revive = %v", err)
	}
}

func TestFlushClearsCounters(t *testing.T) {
	s := newStore()
	k := s.KeyFor("dep")
	_ = s.IncrOps([]Key{k})
	s.Flush()
	if s.Ops(k) != 0 {
		t.Error("Flush kept counters")
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	pub := newStore()
	sub := newStore()
	var keys []Key
	for i := 0; i < 50; i++ {
		k := pub.KeyFor(fmt.Sprintf("dep-%d", i))
		keys = append(keys, k)
		held, _ := pub.LockWrites([]Key{k})
		if _, err := pub.Bump(nil, []Key{k}); err != nil {
			t.Fatal(err)
		}
		pub.UnlockWrites(held)
	}
	snap, err := pub.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	for k, c := range snap {
		if err := sub.SetOps(k, c.Ops); err != nil {
			t.Fatal(err)
		}
	}
	for _, k := range keys {
		if sub.Ops(k) != pub.Counters(k).Ops {
			t.Fatalf("ops mismatch for %d", k)
		}
	}
}

func TestCardinalityBoundsEntries(t *testing.T) {
	s := New(Config{Shards: 2, Cardinality: 8})
	for i := 0; i < 1000; i++ {
		k := s.KeyFor(fmt.Sprintf("dep-%d", i))
		if uint64(k) >= 8 {
			t.Fatalf("key %d outside cardinality", k)
		}
		if err := s.IncrOps([]Key{k}); err != nil {
			t.Fatal(err)
		}
	}
	if s.Entries() > 8 {
		t.Fatalf("Entries = %d, want <= 8", s.Entries())
	}
}

func TestCardinalityOneSerializesEverything(t *testing.T) {
	s := New(Config{Shards: 4, Cardinality: 1})
	if s.KeyFor("a") != s.KeyFor("zzz") {
		t.Fatal("cardinality-1 store produced distinct keys")
	}
}

func TestRingConsistency(t *testing.T) {
	r := newRing(8)
	for i := 0; i < 100; i++ {
		h := hashString(fmt.Sprintf("key-%d", i))
		a, b := r.locate(h), r.locate(h)
		if a != b {
			t.Fatal("ring lookup not deterministic")
		}
		if a < 0 || a >= 8 {
			t.Fatalf("shard %d out of range", a)
		}
	}
}

func TestRingBalance(t *testing.T) {
	r := newRing(4)
	counts := make([]int, 4)
	const n = 20000
	for i := 0; i < n; i++ {
		counts[r.locate(hashString(fmt.Sprintf("key-%d", i)))]++
	}
	for s, c := range counts {
		frac := float64(c) / n
		if frac < 0.10 || frac > 0.45 {
			t.Errorf("shard %d holds %.1f%% of keys", s, frac*100)
		}
	}
}

// Property: ops counters are monotonically non-decreasing under any
// interleaving of IncrOps and SetOps.
func TestQuickOpsMonotonic(t *testing.T) {
	check := func(incrs []bool, sets []uint16) bool {
		s := New(Config{Shards: 2})
		k := s.KeyFor("k")
		var last uint64
		for i := 0; i < len(incrs) || i < len(sets); i++ {
			if i < len(incrs) && incrs[i] {
				_ = s.IncrOps([]Key{k})
			}
			if i < len(sets) {
				_ = s.SetOps(k, uint64(sets[i]))
			}
			cur := s.Ops(k)
			if cur < last {
				return false
			}
			last = cur
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: Bump with only write deps returns exactly version-1 and the
// sum of ops over all keys equals the number of (key, bump) events.
func TestQuickBumpAccounting(t *testing.T) {
	check := func(seq []uint8) bool {
		s := New(Config{Shards: 3})
		bumps := make(map[Key]uint64)
		for _, b := range seq {
			k := s.KeyFor(fmt.Sprintf("obj-%d", b%5))
			held, err := s.LockWrites([]Key{k})
			if err != nil {
				return false
			}
			deps, err := s.Bump(nil, []Key{k})
			s.UnlockWrites(held)
			if err != nil {
				return false
			}
			// The message version is the pre-bump version.
			if deps[k] != bumps[k] {
				return false
			}
			bumps[k]++
			c := s.Counters(k)
			if c.Ops != bumps[k] || c.Version != bumps[k] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestThresholdWakeupsSkipUnsatisfied: a waiter needing ops >= 5 must
// stay registered (and blocked) through increments 1..4 and wake on the
// increment that reaches 5. The old behaviour woke every waiter on
// every increment, forcing a spurious re-check round trip each time.
func TestThresholdWakeupsSkipUnsatisfied(t *testing.T) {
	s := New(Config{Shards: 1})
	k := s.KeyFor("dep")
	sh := s.shardFor(k)

	done := make(chan error, 1)
	go func() { done <- s.WaitAtLeast(k, 5, 5*time.Second) }()

	// Wait for the waiter to register.
	deadline := time.Now().Add(2 * time.Second)
	for {
		sh.waitMu.Lock()
		n := len(sh.waiters[k])
		sh.waitMu.Unlock()
		if n == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("waiter never registered")
		}
		time.Sleep(time.Millisecond)
	}

	for i := 0; i < 4; i++ {
		if err := s.IncrOps([]Key{k}); err != nil {
			t.Fatal(err)
		}
	}
	// Below threshold: waiter must still be registered and blocked.
	sh.waitMu.Lock()
	n := len(sh.waiters[k])
	sh.waitMu.Unlock()
	if n != 1 {
		t.Fatalf("waiter list has %d entries after sub-threshold increments, want 1", n)
	}
	select {
	case err := <-done:
		t.Fatalf("waiter returned early: %v", err)
	default:
	}

	// The increment that reaches the threshold wakes it.
	if err := s.IncrOps([]Key{k}); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("waiter not woken at threshold")
	}
}

// TestThresholdWakeupsMulti: a multi-key waiter wakes only when the
// key still short of its threshold reaches it, not on unrelated
// increments of already-satisfied keys.
func TestThresholdWakeupsMulti(t *testing.T) {
	s := New(Config{Shards: 2})
	a, b := s.KeyFor("depA"), s.KeyFor("depB")
	for i := 0; i < 3; i++ { // a=3, satisfied up-front
		if err := s.IncrOps([]Key{a}); err != nil {
			t.Fatal(err)
		}
	}
	done := make(chan error, 1)
	go func() { done <- s.WaitAtLeastMulti(map[Key]uint64{a: 2, b: 2}, 5*time.Second) }()

	// a is satisfied up-front, b is not: hammering a must not complete
	// the wait.
	time.Sleep(10 * time.Millisecond)
	for i := 0; i < 8; i++ {
		if err := s.IncrOps([]Key{a}); err != nil {
			t.Fatal(err)
		}
	}
	select {
	case err := <-done:
		t.Fatalf("multi-wait returned with b unsatisfied: %v", err)
	default:
	}
	// IncrOps dedups its key list, so two separate calls.
	for i := 0; i < 2; i++ {
		if err := s.IncrOps([]Key{b}); err != nil {
			t.Fatal(err)
		}
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("multi-wait not woken when b reached threshold")
	}
}
