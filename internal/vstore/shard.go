package vstore

import (
	"sync"
	"time"

	"synapse/internal/timeutil"
)

// entry is the per-key counter pair. On publisher stores both fields are
// used; subscriber stores use ops (dependency counters) and version
// (weak-mode object versions) independently.
type entry struct {
	ops     uint64
	version uint64
}

// shard is one version-store instance. script executes a function
// atomically over the shard's key space — the stand-in for a Redis LUA
// script — charging one round trip of latency. Key locks (used for
// publisher write dependencies) are cooperative and independent of the
// script mutex.
type shard struct {
	mu   sync.RWMutex
	data map[Key]*entry

	lockMu sync.Mutex
	locks  map[Key]chan struct{}

	waitMu  sync.Mutex
	waiters map[Key][]waiter
}

// waiter is one registered dependency wait: the channel to signal and
// the ops value the waiter needs. Wakeups are threshold-aware — an
// increment only signals waiters whose threshold it reached — so a hot
// key incremented thousands of times per second does not stampede every
// blocked subscriber into a spurious re-check round trip each time
// (the thundering herd zipf-skewed workloads otherwise produce).
type waiter struct {
	ch  chan struct{}
	min uint64
}

func newShard() *shard {
	return &shard{
		data:    make(map[Key]*entry),
		locks:   make(map[Key]chan struct{}),
		waiters: make(map[Key][]waiter),
	}
}

// script runs fn atomically over the shard data. Injected latency is
// charged by callers through timeutil.Wait so that precise waiting is
// honoured uniformly.
func (sh *shard) script(cost time.Duration, fn func(map[Key]*entry)) {
	if cost > 0 {
		timeutil.Wait(cost, false)
	}
	sh.mu.Lock()
	fn(sh.data)
	sh.mu.Unlock()
}

// rscript runs a READ-ONLY fn over the shard data under the read lock,
// so concurrent dependency checks (the hottest subscriber path under
// zipf skew: many workers probing the same hot keys) never serialize
// against each other — only against writers. fn must not mutate the
// map or any entry.
func (sh *shard) rscript(cost time.Duration, fn func(map[Key]*entry)) {
	if cost > 0 {
		timeutil.Wait(cost, false)
	}
	sh.mu.RLock()
	fn(sh.data)
	sh.mu.RUnlock()
}

func (sh *shard) flush() {
	sh.mu.Lock()
	sh.data = make(map[Key]*entry)
	sh.mu.Unlock()
	sh.wakeAll()
}

// lock acquires the cooperative key lock (blocking).
func (sh *shard) lock(k Key) {
	sh.lockMu.Lock()
	ch, ok := sh.locks[k]
	if !ok {
		ch = make(chan struct{}, 1)
		sh.locks[k] = ch
	}
	sh.lockMu.Unlock()
	ch <- struct{}{}
}

// unlock releases the cooperative key lock.
func (sh *shard) unlock(k Key) {
	sh.lockMu.Lock()
	ch := sh.locks[k]
	sh.lockMu.Unlock()
	if ch == nil {
		panic("vstore: unlock of unheld key")
	}
	select {
	case <-ch:
	default:
		panic("vstore: unlock of unheld key")
	}
}

// register adds a waiter for the key, needing ops >= min. The caller
// must check its condition AFTER registering (and deregister if already
// satisfied) so that no wakeup can be lost between the check and the
// registration.
func (sh *shard) register(k Key, min uint64) chan struct{} {
	ch := make(chan struct{}, 1)
	sh.registerCh(k, min, ch)
	return ch
}

// registerCh registers a caller-owned waiter channel for the key, with
// the ops threshold the waiter needs. A multi-key waiter registers one
// channel on every key it waits for (across shards); wakeups are
// non-blocking sends, so duplicate registrations of the same channel
// are harmless.
func (sh *shard) registerCh(k Key, min uint64, ch chan struct{}) {
	sh.waitMu.Lock()
	sh.waiters[k] = append(sh.waiters[k], waiter{ch: ch, min: min})
	sh.waitMu.Unlock()
}

// deregister removes a waiter channel (no-op if already woken).
func (sh *shard) deregister(k Key, ch chan struct{}) {
	sh.waitMu.Lock()
	ws := sh.waiters[k]
	for i, w := range ws {
		if w.ch == ch {
			sh.waiters[k] = append(ws[:i], ws[i+1:]...)
			break
		}
	}
	if len(sh.waiters[k]) == 0 {
		delete(sh.waiters, k)
	}
	sh.waitMu.Unlock()
}

// await blocks on a registered waiter channel until signalled or timeout
// (timeout < 0 waits forever). Returns false on timeout; the caller must
// deregister in that case.
func await(ch chan struct{}, timeout time.Duration) bool {
	if timeout < 0 {
		<-ch
		return true
	}
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case <-ch:
		return true
	case <-timer.C:
		return false
	}
}

// wakeReached signals waiters on keys[i] whose threshold vals[i] (the
// key's ops counter after the update) satisfies. Waiters still short of
// their threshold stay registered: waking them would only trigger a
// futile re-check round trip, and the increment that eventually reaches
// their threshold will signal them.
func (sh *shard) wakeReached(keys []Key, vals []uint64) {
	sh.waitMu.Lock()
	var toWake []chan struct{}
	for i, k := range keys {
		ws := sh.waiters[k]
		if len(ws) == 0 {
			continue
		}
		kept := ws[:0]
		for _, w := range ws {
			if w.min <= vals[i] {
				toWake = append(toWake, w.ch)
			} else {
				kept = append(kept, w)
			}
		}
		if len(kept) == 0 {
			delete(sh.waiters, k)
		} else {
			sh.waiters[k] = kept
		}
	}
	sh.waitMu.Unlock()
	for _, ch := range toWake {
		select {
		case ch <- struct{}{}:
		default:
		}
	}
}

// wakeAll signals every waiter regardless of threshold (store death,
// flush: waiters must re-check liveness, not counters).
func (sh *shard) wakeAll() {
	sh.waitMu.Lock()
	var toWake []chan struct{}
	for k, ws := range sh.waiters {
		for _, w := range ws {
			toWake = append(toWake, w.ch)
		}
		delete(sh.waiters, k)
	}
	sh.waitMu.Unlock()
	for _, ch := range toWake {
		select {
		case ch <- struct{}{}:
		default:
		}
	}
}
