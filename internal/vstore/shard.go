package vstore

import (
	"sync"
	"time"

	"synapse/internal/timeutil"
)

// entry is the per-key counter pair. On publisher stores both fields are
// used; subscriber stores use ops (dependency counters) and version
// (weak-mode object versions) independently.
type entry struct {
	ops     uint64
	version uint64
}

// shard is one version-store instance. script executes a function
// atomically over the shard's key space — the stand-in for a Redis LUA
// script — charging one round trip of latency. Key locks (used for
// publisher write dependencies) are cooperative and independent of the
// script mutex.
type shard struct {
	mu   sync.Mutex
	data map[Key]*entry

	lockMu sync.Mutex
	locks  map[Key]chan struct{}

	waitMu  sync.Mutex
	waiters map[Key][]chan struct{}
}

func newShard() *shard {
	return &shard{
		data:    make(map[Key]*entry),
		locks:   make(map[Key]chan struct{}),
		waiters: make(map[Key][]chan struct{}),
	}
}

// script runs fn atomically over the shard data. Injected latency is
// charged by callers through timeutil.Wait so that precise waiting is
// honoured uniformly.
func (sh *shard) script(cost time.Duration, fn func(map[Key]*entry)) {
	if cost > 0 {
		timeutil.Wait(cost, false)
	}
	sh.mu.Lock()
	fn(sh.data)
	sh.mu.Unlock()
}

func (sh *shard) flush() {
	sh.mu.Lock()
	sh.data = make(map[Key]*entry)
	sh.mu.Unlock()
	sh.wakeAll()
}

// lock acquires the cooperative key lock (blocking).
func (sh *shard) lock(k Key) {
	sh.lockMu.Lock()
	ch, ok := sh.locks[k]
	if !ok {
		ch = make(chan struct{}, 1)
		sh.locks[k] = ch
	}
	sh.lockMu.Unlock()
	ch <- struct{}{}
}

// unlock releases the cooperative key lock.
func (sh *shard) unlock(k Key) {
	sh.lockMu.Lock()
	ch := sh.locks[k]
	sh.lockMu.Unlock()
	if ch == nil {
		panic("vstore: unlock of unheld key")
	}
	select {
	case <-ch:
	default:
		panic("vstore: unlock of unheld key")
	}
}

// register adds a waiter channel for the key. The caller must check its
// condition AFTER registering (and deregister if already satisfied) so
// that no wakeup can be lost between the check and the registration.
func (sh *shard) register(k Key) chan struct{} {
	ch := make(chan struct{}, 1)
	sh.registerCh(k, ch)
	return ch
}

// registerCh registers a caller-owned waiter channel for the key. A
// multi-key waiter registers one channel on every key it waits for
// (across shards); wakeups are non-blocking sends, so duplicate
// registrations of the same channel are harmless.
func (sh *shard) registerCh(k Key, ch chan struct{}) {
	sh.waitMu.Lock()
	sh.waiters[k] = append(sh.waiters[k], ch)
	sh.waitMu.Unlock()
}

// deregister removes a waiter channel (no-op if already woken).
func (sh *shard) deregister(k Key, ch chan struct{}) {
	sh.waitMu.Lock()
	ws := sh.waiters[k]
	for i, w := range ws {
		if w == ch {
			sh.waiters[k] = append(ws[:i], ws[i+1:]...)
			break
		}
	}
	if len(sh.waiters[k]) == 0 {
		delete(sh.waiters, k)
	}
	sh.waitMu.Unlock()
}

// await blocks on a registered waiter channel until signalled or timeout
// (timeout < 0 waits forever). Returns false on timeout; the caller must
// deregister in that case.
func await(ch chan struct{}, timeout time.Duration) bool {
	if timeout < 0 {
		<-ch
		return true
	}
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case <-ch:
		return true
	case <-timer.C:
		return false
	}
}

// wakeKeys signals every waiter registered on the keys.
func (sh *shard) wakeKeys(keys []Key) {
	sh.waitMu.Lock()
	var toWake []chan struct{}
	for _, k := range keys {
		toWake = append(toWake, sh.waiters[k]...)
		delete(sh.waiters, k)
	}
	sh.waitMu.Unlock()
	for _, ch := range toWake {
		select {
		case ch <- struct{}{}:
		default:
		}
	}
}

// wakeAll signals every waiter (store death, flush).
func (sh *shard) wakeAll() {
	sh.waitMu.Lock()
	var toWake []chan struct{}
	for k, ws := range sh.waiters {
		toWake = append(toWake, ws...)
		delete(sh.waiters, k)
	}
	sh.waitMu.Unlock()
	for _, ch := range toWake {
		select {
		case ch <- struct{}{}:
		default:
		}
	}
}
