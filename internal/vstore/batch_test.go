package vstore

import (
	"errors"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

// depGroup is one randomly generated operation group for the parity
// property tests: raw key material for read and write dependencies.
type depGroup struct {
	Reads  []uint8
	Writes []uint8
}

func (g depGroup) keys() (reads, writes []Key) {
	for _, r := range g.Reads {
		reads = append(reads, Key(r%32))
	}
	for _, w := range g.Writes {
		writes = append(writes, Key(w%32))
	}
	// Bump requires at least one dependency in practice (every message
	// has its own object's write dep); mirror that.
	if len(writes) == 0 {
		writes = []Key{Key(len(reads))}
	}
	return reads, writes
}

// TestQuickBumpBatchParity is the batch-vs-legacy property test: for
// random op groups, BumpBatch must produce byte-identical version maps
// and leave byte-identical final counters to the legacy
// LockWrites+Bump+UnlockWrites sequence applied to a twin store.
func TestQuickBumpBatchParity(t *testing.T) {
	legacy := New(Config{Shards: 4})
	batched := New(Config{Shards: 4})
	prop := func(g depGroup) bool {
		reads, writes := g.keys()

		held, err := legacy.LockWrites(append(append([]Key{}, writes...), reads...))
		if err != nil {
			t.Fatal(err)
		}
		want, err := legacy.Bump(reads, writes)
		if err != nil {
			t.Fatal(err)
		}
		legacy.UnlockWrites(held)

		b, err := batched.BumpBatch(reads, writes)
		if err != nil {
			t.Fatal(err)
		}
		b.Release()

		if len(want) != len(b.Versions) {
			return false
		}
		for k, v := range want {
			if b.Versions[k] != v {
				return false
			}
		}
		// Final counters must match for every key touched.
		for k := range want {
			if legacy.Counters(k) != batched.Counters(k) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickApplyBatchParity: a random claim sequence through ApplyBatch
// must decide and record exactly what sequential ApplyIfNewer calls do,
// including repeated claims on the same key within one batch.
func TestQuickApplyBatchParity(t *testing.T) {
	legacy := New(Config{Shards: 4})
	batched := New(Config{Shards: 4})
	prop := func(raw []uint16) bool {
		claims := make([]Claim, 0, len(raw))
		for _, r := range raw {
			claims = append(claims, Claim{Key: Key(r % 8), Version: uint64(r>>3) % 16})
		}
		var want []ClaimResult
		for _, c := range claims {
			applied, prev, err := legacy.ApplyIfNewer(c.Key, c.Version)
			if err != nil {
				t.Fatal(err)
			}
			want = append(want, ClaimResult{Applied: applied, Prev: prev})
		}
		got, err := batched.ApplyBatch(claims)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		for _, c := range claims {
			if legacy.Counters(c.Key) != batched.Counters(c.Key) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestBumpBatchHoldsLocksUntilRelease(t *testing.T) {
	s := newStore()
	k := s.KeyFor("app/items/id/1")
	b, err := s.BumpBatch(nil, []Key{k})
	if err != nil {
		t.Fatal(err)
	}
	acquired := make(chan struct{})
	go func() {
		held, err := s.LockWrites([]Key{k})
		if err != nil {
			t.Error(err)
			return
		}
		close(acquired)
		s.UnlockWrites(held)
	}()
	select {
	case <-acquired:
		t.Fatal("lock acquired while batch held it")
	case <-time.After(20 * time.Millisecond):
	}
	b.Release()
	select {
	case <-acquired:
	case <-time.After(time.Second):
		t.Fatal("lock not released by batch Release")
	}
	// Release is idempotent.
	b.Release()
}

func TestBumpBatchDeadStore(t *testing.T) {
	s := newStore()
	s.Kill()
	if _, err := s.BumpBatch(nil, []Key{1}); !errors.Is(err, ErrDead) {
		t.Fatalf("err = %v, want ErrDead", err)
	}
	s.Revive()
	b, err := s.BumpBatch(nil, []Key{1})
	if err != nil {
		t.Fatal(err)
	}
	b.Release()
}

func TestWaitAtLeastMultiSatisfiedAndWake(t *testing.T) {
	s := newStore()
	k1, k2 := s.KeyFor("a"), s.KeyFor("b")
	if err := s.IncrOps([]Key{k1}); err != nil {
		t.Fatal(err)
	}
	// Already satisfied (k1 at 1, k2 needs 0).
	if err := s.WaitAtLeastMulti(map[Key]uint64{k1: 1, k2: 0}, 0); err != nil {
		t.Fatal(err)
	}
	// Blocks until BOTH k1 reaches 2 and k2 reaches 1.
	done := make(chan error, 1)
	go func() {
		done <- s.WaitAtLeastMulti(map[Key]uint64{k1: 2, k2: 1}, time.Second)
	}()
	select {
	case err := <-done:
		t.Fatalf("returned early: %v", err)
	case <-time.After(10 * time.Millisecond):
	}
	if err := s.IncrOps([]Key{k1}); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		t.Fatalf("returned with one of two keys satisfied: %v", err)
	case <-time.After(10 * time.Millisecond):
	}
	if err := s.IncrOps([]Key{k2}); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(time.Second):
		t.Fatal("wait did not wake")
	}
}

func TestWaitAtLeastMultiTimeoutAndKill(t *testing.T) {
	s := newStore()
	k := s.KeyFor("never")
	if err := s.WaitAtLeastMulti(map[Key]uint64{k: 1}, 0); !errors.Is(err, ErrTimeout) {
		t.Fatalf("zero-timeout err = %v, want ErrTimeout", err)
	}
	if err := s.WaitAtLeastMulti(map[Key]uint64{k: 1}, 10*time.Millisecond); !errors.Is(err, ErrTimeout) {
		t.Fatalf("deadline err = %v, want ErrTimeout", err)
	}
	done := make(chan error, 1)
	go func() { done <- s.WaitAtLeastMulti(map[Key]uint64{k: 1}, -1) }()
	time.Sleep(10 * time.Millisecond)
	s.Kill()
	select {
	case err := <-done:
		if !errors.Is(err, ErrDead) {
			t.Fatalf("err = %v, want ErrDead", err)
		}
	case <-time.After(time.Second):
		t.Fatal("kill did not wake multi-waiter")
	}
}

// TestWaitAtLeastMultiNoLostWakeup hammers concurrent increments against
// multi-key waiters: every waiter must eventually observe the counters.
func TestWaitAtLeastMultiNoLostWakeup(t *testing.T) {
	s := newStore()
	keys := []Key{s.KeyFor("x"), s.KeyFor("y"), s.KeyFor("z")}
	const rounds = 50
	var wg sync.WaitGroup
	for i := 1; i <= rounds; i++ {
		min := uint64(i)
		wg.Add(1)
		go func() {
			defer wg.Done()
			reqs := map[Key]uint64{keys[0]: min, keys[1]: min, keys[2]: min}
			if err := s.WaitAtLeastMulti(reqs, 5*time.Second); err != nil {
				t.Errorf("waiter %d: %v", min, err)
			}
		}()
	}
	for i := 0; i < rounds; i++ {
		if err := s.IncrOps(keys); err != nil {
			t.Fatal(err)
		}
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("multi-waiters hung")
	}
}

// TestMixedBatchAndLegacyLocking interleaves BumpBatch with the legacy
// lock chain over an overlapping key set from many goroutines: the
// shared sorted-order protocol (lockOrdered) must keep them deadlock
// free.
func TestMixedBatchAndLegacyLocking(t *testing.T) {
	s := newStore()
	keys := []Key{s.KeyFor("k1"), s.KeyFor("k2"), s.KeyFor("k3"), s.KeyFor("k4")}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				// Deliberately reversed/rotated key orders.
				ks := []Key{keys[(w+i)%4], keys[(w+i+2)%4], keys[(w+i+3)%4]}
				if w%2 == 0 {
					b, err := s.BumpBatch(ks[:1], ks[1:])
					if err != nil {
						t.Error(err)
						return
					}
					b.Release()
				} else {
					held, err := s.LockWrites(ks)
					if err != nil {
						t.Error(err)
						return
					}
					if _, err := s.Bump(nil, ks); err != nil {
						t.Error(err)
						return
					}
					s.UnlockWrites(held)
				}
			}
		}(w)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("deadlock between batch and legacy lock paths")
	}
}

// TestRoundTripAccounting pins the per-plan round-trip costs the Fig 13
// extension benchmark reports: the batched publisher plan costs 2
// windows (bump+release) against the legacy 3 (lock+bump+unlock), and
// the batched subscriber side is flat in the number of dependencies.
func TestRoundTripAccounting(t *testing.T) {
	s := newStore()
	keys := []Key{1, 2, 3, 4, 5}

	rt0 := s.RoundTrips()
	b, err := s.BumpBatch(keys[1:], keys[:1])
	if err != nil {
		t.Fatal(err)
	}
	b.Release()
	if got := s.RoundTrips() - rt0; got != 2 {
		t.Errorf("BumpBatch+Release = %d round trips, want 2", got)
	}

	rt0 = s.RoundTrips()
	held, err := s.LockWrites(keys)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Bump(keys[1:], keys[:1]); err != nil {
		t.Fatal(err)
	}
	s.UnlockWrites(held)
	if got := s.RoundTrips() - rt0; got != 3 {
		t.Errorf("legacy lock+bump+unlock = %d round trips, want 3", got)
	}

	if err := s.IncrOps(keys); err != nil {
		t.Fatal(err)
	}
	rt0 = s.RoundTrips()
	reqs := make(map[Key]uint64, len(keys))
	for _, k := range keys {
		reqs[k] = 1
	}
	if err := s.WaitAtLeastMulti(reqs, time.Second); err != nil {
		t.Fatal(err)
	}
	if got := s.RoundTrips() - rt0; got != 1 {
		t.Errorf("satisfied WaitAtLeastMulti = %d round trips, want 1", got)
	}

	rt0 = s.RoundTrips()
	claims := make([]Claim, len(keys))
	for i, k := range keys {
		claims[i] = Claim{Key: k, Version: 1}
	}
	if _, err := s.ApplyBatch(claims); err != nil {
		t.Fatal(err)
	}
	if got := s.RoundTrips() - rt0; got != 1 {
		t.Errorf("ApplyBatch = %d round trips, want 1", got)
	}
}

// TestIncrOpsMulti checks the cross-message group-commit plan: applying
// many messages' increments through one IncrOpsMulti call must leave
// every counter exactly where the equivalent serial IncrOps calls
// would, cost one round-trip window, and wake threshold waiters on the
// final post-increment values.
func TestIncrOpsMulti(t *testing.T) {
	serial := newStore()
	multi := newStore()

	// Three "messages" with overlapping key sets: k0 bumped by all
	// three, k1 by two, k2 by one.
	k0, k1, k2 := Key(10), Key(11), Key(12)
	msgs := [][]Key{{k0, k1, k2}, {k0, k1}, {k0}}
	for _, m := range msgs {
		if err := serial.IncrOps(m); err != nil {
			t.Fatal(err)
		}
	}

	counts := map[Key]uint64{}
	for _, m := range msgs {
		for _, k := range m {
			counts[k]++
		}
	}
	rt0 := multi.RoundTrips()
	if err := multi.IncrOpsMulti(counts); err != nil {
		t.Fatal(err)
	}
	if got := multi.RoundTrips() - rt0; got != 1 {
		t.Fatalf("IncrOpsMulti round trips = %d, want 1", got)
	}
	for _, k := range []Key{k0, k1, k2} {
		s, m := serial.Counters(k), multi.Counters(k)
		if s.Ops != m.Ops {
			t.Errorf("key %d: multi ops %d != serial ops %d", k, m.Ops, s.Ops)
		}
	}
	if got := multi.Counters(k0).Ops; got != 3 {
		t.Errorf("k0 ops = %d, want 3", got)
	}

	// A threshold waiter at the merged final value must wake from the
	// single flush (wakeReached must see post-increment values).
	done := make(chan error, 1)
	go func() { done <- multi.WaitAtLeast(k1, 4, 5*time.Second) }()
	time.Sleep(5 * time.Millisecond)
	if err := multi.IncrOpsMulti(map[Key]uint64{k1: 2}); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatalf("waiter at merged threshold: %v", err)
	}

	// Empty and zero-count flushes are free (no round trip, no error).
	rt0 = multi.RoundTrips()
	if err := multi.IncrOpsMulti(nil); err != nil {
		t.Fatal(err)
	}
	if err := multi.IncrOpsMulti(map[Key]uint64{k2: 0}); err != nil {
		t.Fatal(err)
	}
	if got := multi.RoundTrips() - rt0; got != 0 {
		t.Fatalf("empty IncrOpsMulti charged %d round trips, want 0", got)
	}
}
