package vstore

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"
)

// depNames generates n realistic dependency names in the shape the core
// layer produces ("app/table/id/<n>" plus a few global keys).
func depNames(n int) []string {
	names := make([]string, 0, n)
	for i := 0; i < n; i++ {
		switch i % 4 {
		case 0:
			names = append(names, fmt.Sprintf("pub/posts/id/%d", i))
		case 1:
			names = append(names, fmt.Sprintf("pub/users/id/%d", i))
		case 2:
			names = append(names, fmt.Sprintf("app%d/comments/id/%d", i%7, i))
		default:
			names = append(names, fmt.Sprintf("pub/sessions/id/s-%d", i))
		}
	}
	return names
}

// TestKeyForCardinalityOneIsGlobalOrdering pins the degenerate case the
// package doc calls out: with a 1-entry hash space every dependency name
// collapses onto the same key, so every write serializes behind every
// other — global ordering.
func TestKeyForCardinalityOneIsGlobalOrdering(t *testing.T) {
	s := New(Config{Shards: 4, Cardinality: 1})
	for _, name := range depNames(500) {
		if k := s.KeyFor(name); k != 0 {
			t.Fatalf("KeyFor(%q) = %d with cardinality 1; want 0", name, k)
		}
	}
}

// TestKeyForRange checks every produced key stays inside the configured
// space, for a spread of small cardinalities.
func TestKeyForRange(t *testing.T) {
	names := depNames(2000)
	for _, card := range []uint64{1, 2, 3, 4, 16, 64, 256} {
		s := New(Config{Shards: 4, Cardinality: card})
		for _, name := range names {
			if k := uint64(s.KeyFor(name)); k >= card {
				t.Fatalf("cardinality %d: KeyFor(%q) = %d out of range", card, name, k)
			}
		}
	}
}

// TestKeyForDeterministicAcrossStores checks the hash depends only on
// the name and cardinality, never on store identity — publisher and
// subscriber stores must agree on every key or causality breaks.
func TestKeyForDeterministicAcrossStores(t *testing.T) {
	a := New(Config{Shards: 1, Cardinality: 64})
	b := New(Config{Shards: 8, Cardinality: 64})
	for _, name := range depNames(300) {
		if ka, kb := a.KeyFor(name), b.KeyFor(name); ka != kb {
			t.Fatalf("KeyFor(%q) differs across stores: %d vs %d", name, ka, kb)
		}
	}
}

// TestKeyForDistributionUniformity is the property test for the hash
// spread: at small cardinalities the buckets must stay close to uniform
// (a skewed spread would concentrate false dependencies on hot keys and
// silently serialize the subscriber). A chi-squared-style bound on the
// per-bucket deviation keeps the test robust to the exact hash choice.
func TestKeyForDistributionUniformity(t *testing.T) {
	const n = 20000
	names := depNames(n)
	for _, card := range []uint64{2, 4, 8, 16, 64, 256} {
		s := New(Config{Shards: 4, Cardinality: card})
		buckets := make([]int, card)
		for _, name := range names {
			buckets[uint64(s.KeyFor(name))]++
		}
		mean := float64(n) / float64(card)
		// With a uniform hash the bucket counts are ~binomial; allow
		// 6 standard deviations plus a small absolute slack so tiny
		// expected counts don't trip on integer granularity.
		sd := math.Sqrt(mean * (1 - 1/float64(card)))
		tol := 6*sd + 8
		for b, c := range buckets {
			if math.Abs(float64(c)-mean) > tol {
				t.Errorf("cardinality %d: bucket %d holds %d of %d names (mean %.1f, tol %.1f)",
					card, b, c, n, mean, tol)
			}
		}
	}
}

// TestKeyForUnboundedCollisionFree checks cardinality 0 (the raw 64-bit
// space) produces no collisions across a realistic name population —
// this is what the DVV comparison treats as "exact" hashed tracking.
func TestKeyForUnboundedCollisionFree(t *testing.T) {
	s := New(Config{Shards: 4, Cardinality: 0})
	seen := make(map[Key]string, 10000)
	for _, name := range depNames(10000) {
		k := s.KeyFor(name)
		if prev, dup := seen[k]; dup {
			t.Fatalf("raw-space collision: %q and %q both hash to %d", prev, name, k)
		}
		seen[k] = name
	}
}

// TestKeyForQuickProperties drives arbitrary names through a spread of
// cardinalities: keys stay in range and equal names always produce
// equal keys.
func TestKeyForQuickProperties(t *testing.T) {
	stores := []*Store{
		New(Config{Shards: 2, Cardinality: 1}),
		New(Config{Shards: 2, Cardinality: 7}),
		New(Config{Shards: 2, Cardinality: 256}),
	}
	prop := func(name string) bool {
		for _, s := range stores {
			k := s.KeyFor(name)
			if card := s.Config().Cardinality; card > 0 && uint64(k) >= card {
				return false
			}
			if s.KeyFor(name) != k {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}
