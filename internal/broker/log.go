package broker

import "sync"

// The queue log is the broker's durability story (§4.4: "RabbitMQ
// persists messages on disk"): an append-only record of every
// state-changing queue operation — declarations, bindings, enqueues,
// deliveries, acks, failures, dead-letterings, decommissions. It is
// the one structure a Crash() does NOT wipe, and Restart() rebuilds
// the broker's entire routing and queue state by replaying it: pending
// messages come back in publish order, delivered-but-unacked messages
// return to the front of their queue flagged Redelivered, dead-letter
// parks and failure counts survive, and acked messages stay gone.
//
// The log self-compacts: past a threshold of appends it replays itself
// into a snapshot and rewrites the entries as the minimal set that
// reproduces that snapshot (acked message payloads are dropped here),
// so memory is bounded by live state, not by traffic history.

type logOp uint8

const (
	opDeclare logOp = iota
	opMaxAttempts
	opBind
	opUnbind
	opDeleteQueue
	opEnqueue
	opDeliver
	opFail
	opAck
	opDeadLetter
	opReplayDL
	opDecommission
	opDeadCount  // synthesized at compaction: cumulative dead-letter total
	opRedeliver  // a delivered-before message was handed out again
	opQueueStats // synthesized at compaction: cumulative redeliveries + max depth
)

type logEntry struct {
	op       logOp
	queue    string
	exchange string
	id       uint64
	payload  []byte
	n        int   // maxLen (declare) / maxAttempts / fails (snapshot enqueue)
	n64      int64 // cumulative dead-letter count (opDeadCount)
	// Snapshot-enqueue flags: state the message had at compaction time.
	delivered    bool
	deadLettered bool
}

// compactEvery bounds appends between snapshot rewrites.
const compactEvery = 4096

type queueLog struct {
	mu      sync.Mutex
	entries []logEntry
	// compacted is the entry count right after the last snapshot
	// rewrite. The next compaction waits until the log doubles past it:
	// a snapshot cannot shrink below the live state, so compacting at a
	// fixed size would replay the ENTIRE log on every append once the
	// live backlog alone exceeds the threshold — quadratic in backlog.
	// Doubling keeps the amortized cost per append O(1) at any depth.
	compacted int
	// seq counts entries ever appended (monotonic across compactions) —
	// the replication cursor space. snapBase is the seq value at the
	// last compaction: the entry appended at seq s >= snapBase lives at
	// index compacted + (s - snapBase); history below snapBase has been
	// rewritten into the snapshot prefix and can only be shipped whole.
	seq      uint64
	snapBase uint64
}

func newQueueLog() *queueLog { return &queueLog{} }

// append records one entry, compacting first if the log has grown past
// the threshold. Callers hold the owning queue's (or broker's) lock,
// which serializes the per-queue entry order; the log's own lock only
// protects the slice.
func (l *queueLog) append(e logEntry) {
	l.mu.Lock()
	if n := len(l.entries); n >= compactEvery && n >= 2*l.compacted {
		l.compactLocked()
		l.compacted = len(l.entries)
		l.snapBase = l.seq
	}
	l.entries = append(l.entries, e)
	l.seq++
	l.mu.Unlock()
}

// shipSince returns copies of the entries appended at or after cursor
// `since` plus the next cursor. ok is false when compaction has
// rewritten history past `since`: the follower's incremental basis is
// gone and it must restart from snapshot().
func (l *queueLog) shipSince(since uint64) (recs []logEntry, next uint64, ok bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if since < l.snapBase || since > l.seq {
		return nil, l.seq, false
	}
	idx := l.compacted + int(since-l.snapBase)
	if idx < len(l.entries) {
		recs = append(recs, l.entries[idx:]...)
	}
	return recs, l.seq, true
}

// snapshot returns a copy of the full current log — the compacted
// prefix plus the live tail — and the cursor to continue shipping from.
// This is the DBLog-style join: the snapshot is the already-maintained
// compacted state, captured under a brief lock without ever pausing
// appends, and the follower interleaves it with the live tail it ships
// afterwards.
func (l *queueLog) snapshot() (recs []logEntry, next uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	recs = append(recs, l.entries...)
	return recs, l.seq
}

// size reports the current entry count (tests).
func (l *queueLog) size() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.entries)
}

// replayMsg is one live message reconstructed from the log.
type replayMsg struct {
	id           uint64
	payload      []byte
	exchange     string
	delivered    bool // handed to a consumer at least once (→ Redelivered)
	fails        int
	deadLettered bool
}

// replayQueue is one queue's reconstructed state.
type replayQueue struct {
	maxLen      int
	maxAttempts int
	dead        bool
	deadCount   int64
	redelivered int64    // cumulative redeliveries handed out
	maxDepth    int      // deepest pending+unacked the log describes
	depth       int      // live (non-parked) messages while folding entries
	order       []uint64 // enqueue order of live message ids
	msgs        map[uint64]*replayMsg
}

// noteDepthDelta adjusts the folding depth and tracks its high water.
func (q *replayQueue) noteDepthDelta(d int) {
	q.depth += d
	if q.depth > q.maxDepth {
		q.maxDepth = q.depth
	}
}

type replayState struct {
	queues   map[string]*replayQueue
	bindings map[string][]string // exchange -> queue names, bind order
}

// replay folds the log into the state it describes.
func (l *queueLog) replay() *replayState {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.replayLocked()
}

func (l *queueLog) replayLocked() *replayState {
	st := &replayState{
		queues:   make(map[string]*replayQueue),
		bindings: make(map[string][]string),
	}
	for i := range l.entries {
		e := &l.entries[i]
		switch e.op {
		case opDeclare:
			if _, ok := st.queues[e.queue]; !ok {
				st.queues[e.queue] = &replayQueue{maxLen: e.n, msgs: make(map[uint64]*replayMsg)}
			}
		case opMaxAttempts:
			if q := st.queues[e.queue]; q != nil {
				q.maxAttempts = e.n
			}
		case opBind:
			bound := false
			for _, qn := range st.bindings[e.exchange] {
				if qn == e.queue {
					bound = true
					break
				}
			}
			if !bound {
				st.bindings[e.exchange] = append(st.bindings[e.exchange], e.queue)
			}
		case opUnbind:
			qs := st.bindings[e.exchange]
			for j, qn := range qs {
				if qn == e.queue {
					st.bindings[e.exchange] = append(qs[:j], qs[j+1:]...)
					break
				}
			}
		case opDeleteQueue:
			delete(st.queues, e.queue)
			for ex, qs := range st.bindings {
				for j, qn := range qs {
					if qn == e.queue {
						st.bindings[ex] = append(qs[:j], qs[j+1:]...)
						break
					}
				}
			}
		case opEnqueue:
			q := st.queues[e.queue]
			if q == nil || q.dead {
				break
			}
			m := &replayMsg{
				id: e.id, payload: e.payload, exchange: e.exchange,
				delivered: e.delivered, fails: e.n, deadLettered: e.deadLettered,
			}
			q.msgs[e.id] = m
			q.order = append(q.order, e.id)
			if !e.deadLettered {
				q.noteDepthDelta(1)
			}
		case opDeliver:
			if q := st.queues[e.queue]; q != nil {
				if m := q.msgs[e.id]; m != nil {
					m.delivered = true
				}
			}
		case opRedeliver:
			if q := st.queues[e.queue]; q != nil {
				q.redelivered++
			}
		case opFail:
			if q := st.queues[e.queue]; q != nil {
				if m := q.msgs[e.id]; m != nil {
					m.fails++
				}
			}
		case opAck:
			if q := st.queues[e.queue]; q != nil {
				if m := q.msgs[e.id]; m != nil && !m.deadLettered {
					q.noteDepthDelta(-1)
				}
				delete(q.msgs, e.id)
			}
		case opDeadLetter:
			if q := st.queues[e.queue]; q != nil {
				q.deadCount++
				if m := q.msgs[e.id]; m != nil && !m.deadLettered {
					m.deadLettered = true
					q.noteDepthDelta(-1)
				}
			}
		case opReplayDL:
			if q := st.queues[e.queue]; q != nil {
				for _, m := range q.msgs {
					if m.deadLettered {
						m.deadLettered = false
						m.fails = 0
						q.noteDepthDelta(1)
					}
				}
			}
		case opDecommission:
			if q := st.queues[e.queue]; q != nil {
				q.dead = true
				q.msgs = make(map[uint64]*replayMsg)
				q.order = nil
				q.depth = 0
			}
		case opDeadCount:
			if q := st.queues[e.queue]; q != nil {
				q.deadCount = e.n64
			}
		case opQueueStats:
			if q := st.queues[e.queue]; q != nil {
				q.redelivered = e.n64
				if e.n > q.maxDepth {
					q.maxDepth = e.n
				}
			}
		}
	}
	// Drop ids whose message was acked so live() iteration is direct.
	for _, q := range st.queues {
		live := q.order[:0]
		for _, id := range q.order {
			if _, ok := q.msgs[id]; ok {
				live = append(live, id)
			}
		}
		q.order = live
	}
	return st
}

// compactLocked rewrites the log as the minimal entry set reproducing
// the current replayed state.
func (l *queueLog) compactLocked() {
	st := l.replayLocked()
	out := make([]logEntry, 0, len(st.queues)*2)
	for name, q := range st.queues {
		out = append(out, logEntry{op: opDeclare, queue: name, n: q.maxLen})
		if q.maxAttempts > 0 {
			out = append(out, logEntry{op: opMaxAttempts, queue: name, n: q.maxAttempts})
		}
		if q.deadCount > 0 {
			out = append(out, logEntry{op: opDeadCount, queue: name, n64: q.deadCount})
		}
		if q.redelivered > 0 || q.maxDepth > 0 {
			out = append(out, logEntry{op: opQueueStats, queue: name, n64: q.redelivered, n: q.maxDepth})
		}
		if q.dead {
			out = append(out, logEntry{op: opDecommission, queue: name})
			continue
		}
		for _, id := range q.order {
			m := q.msgs[id]
			out = append(out, logEntry{
				op: opEnqueue, queue: name, id: m.id,
				payload: m.payload, exchange: m.exchange,
				n: m.fails, delivered: m.delivered, deadLettered: m.deadLettered,
			})
		}
	}
	for ex, qs := range st.bindings {
		for _, qn := range qs {
			out = append(out, logEntry{op: opBind, queue: qn, exchange: ex})
		}
	}
	l.entries = out
}
