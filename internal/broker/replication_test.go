package broker

import (
	"errors"
	"fmt"
	"testing"
)

// TestReplicationRoundTrip: a broker built from shipped log records
// must be behaviourally identical to the primary restarting from its
// own log — pending messages in publish order, the delivered-but-
// unacked message back at the front flagged Redelivered, dead-letter
// parks and bindings intact, and fresh publishes non-colliding.
func TestReplicationRoundTrip(t *testing.T) {
	b := New()
	q, _ := b.DeclareQueue("q", 0)
	if err := b.Bind("q", "ex"); err != nil {
		t.Fatal(err)
	}
	q.SetMaxAttempts(1)
	for i := 0; i < 6; i++ {
		if err := b.Publish("ex", []byte(fmt.Sprintf("m%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	d, _ := q.Get() // m0: processed
	_ = q.Ack(d.Tag)
	if _, err := q.Get(); err != nil { // m1: in flight, never acked
		t.Fatal(err)
	}
	d, _ = q.Get() // m2: poison, parks immediately (maxAttempts 1)
	if dead, err := q.NackError(d.Tag); err != nil || !dead {
		t.Fatalf("NackError = (%v, %v), want parked", dead, err)
	}

	recs, next := b.SnapshotLog()
	if next != b.LogSeq() {
		t.Fatalf("snapshot cursor %d != LogSeq %d", next, b.LogSeq())
	}
	r := FromReplica(recs)
	rq, ok := r.Queue("q")
	if !ok {
		t.Fatal("replica lost the queue")
	}
	if rq.Len() != 4 {
		t.Fatalf("replica pending = %d, want 4 (m1 redelivered + m3..m5)", rq.Len())
	}
	if n := rq.DeadLetterCount(); n != 1 {
		t.Fatalf("replica dead letters = %d, want 1", n)
	}
	// m1's delivery died with the primary: it must come back first,
	// flagged Redelivered.
	d, err := rq.Get()
	if err != nil || string(d.Payload) != "m1" || !d.Redelivered {
		t.Fatalf("first replica delivery = %q (redelivered=%v, err=%v), want m1 redelivered", d.Payload, d.Redelivered, err)
	}
	_ = rq.Ack(d.Tag)
	for _, want := range []string{"m3", "m4", "m5"} {
		d, err := rq.Get()
		if err != nil || string(d.Payload) != want {
			t.Fatalf("replica delivery = %q/%v, want %q", d.Payload, err, want)
		}
		_ = rq.Ack(d.Tag)
	}
	// Bindings survived the ship, and fresh ids cannot collide with
	// replicated ones.
	if err := r.Publish("ex", []byte("fresh")); err != nil {
		t.Fatal(err)
	}
	d, err = rq.Get()
	if err != nil || string(d.Payload) != "fresh" {
		t.Fatalf("post-promotion publish = %q/%v", d.Payload, err)
	}
}

// TestShipLogIncrementalAndSnapshotFallback walks the follower
// protocol: snapshot once, tail the live log by cursor, and when
// compaction invalidates the cursor, fall back to a fresh snapshot.
func TestShipLogIncrementalAndSnapshotFallback(t *testing.T) {
	b := New()
	q, _ := b.DeclareQueue("q", 0)
	_ = b.Bind("q", "ex")

	// Follower joins: snapshot plus cursor.
	buf, cursor := b.SnapshotLog()

	for i := 0; i < 5; i++ {
		_ = b.Publish("ex", []byte(fmt.Sprintf("live%d", i)))
	}
	recs, next, ok := b.ShipLog(cursor)
	if !ok || len(recs) != 5 {
		t.Fatalf("ShipLog = %d recs, ok=%v, want 5 live entries", len(recs), ok)
	}
	buf, cursor = append(buf, recs...), next

	// Shipping from an up-to-date cursor is an empty, valid batch.
	if recs, _, ok := b.ShipLog(cursor); !ok || len(recs) != 0 {
		t.Fatalf("up-to-date ship = %d recs, ok=%v", len(recs), ok)
	}
	// A cursor from the future is rejected, not silently served.
	if _, _, ok := b.ShipLog(cursor + 1); ok {
		t.Fatal("ShipLog accepted a cursor past the log end")
	}

	// Churn enough acked traffic to force a compaction, stranding the
	// follower's cursor below snapBase.
	for i := 0; i < compactEvery; i++ {
		_ = b.Publish("ex", []byte("churn"))
		d, _ := q.Get()
		_ = q.Ack(d.Tag)
	}
	if _, _, ok := b.ShipLog(cursor); ok {
		t.Fatal("ShipLog honored a cursor compaction rewrote away")
	}
	// DBLog-style refetch: restart from snapshot, then tail as before.
	buf, cursor = b.SnapshotLog()
	_ = b.Publish("ex", []byte("tail"))
	recs, cursor, ok = b.ShipLog(cursor)
	if !ok {
		t.Fatal("post-snapshot tail ship failed")
	}
	buf = append(buf, recs...)

	// The follower's buffer must now reproduce the primary's live state:
	// the churn loop kept depth at 5 (each iteration consumed the head
	// and published one), plus the post-snapshot tail message.
	r := FromReplica(buf)
	rq, _ := r.Queue("q")
	if got, want := rq.Len(), q.Len(); got != want || want != 6 {
		t.Fatalf("replica pending = %d, primary = %d, want 6", got, want)
	}
}

// TestCompactReplicaBoundsBufferAndPreservesState: follower-side
// compaction must shrink an ack-heavy buffer and still build the same
// broker.
func TestCompactReplicaBoundsBufferAndPreservesState(t *testing.T) {
	b := New()
	q, _ := b.DeclareQueue("q", 0)
	_ = b.Bind("q", "ex")
	for i := 0; i < 500; i++ {
		_ = b.Publish("ex", []byte("acked"))
		d, _ := q.Get()
		_ = q.Ack(d.Tag)
	}
	_ = b.Publish("ex", []byte("keep0"))
	_ = b.Publish("ex", []byte("keep1"))

	recs, _ := b.SnapshotLog()
	small := CompactReplica(recs)
	if len(small) >= len(recs)/10 {
		t.Fatalf("CompactReplica left %d of %d records", len(small), len(recs))
	}
	r := FromReplica(small)
	rq, _ := r.Queue("q")
	if rq.Len() != 2 {
		t.Fatalf("compacted replica pending = %d, want 2", rq.Len())
	}
	for _, want := range []string{"keep0", "keep1"} {
		d, err := rq.Get()
		if err != nil || string(d.Payload) != want {
			t.Fatalf("compacted replica delivery = %q/%v, want %q", d.Payload, err, want)
		}
		_ = rq.Ack(d.Tag)
	}
}

// TestFencePermanentlyDown: a fenced broker is dead forever — Restart
// must refuse to revive the superseded primary's stale state.
func TestFencePermanentlyDown(t *testing.T) {
	b := New()
	q, _ := b.DeclareQueue("q", 0)
	_ = b.Bind("q", "ex")
	_ = b.Publish("ex", []byte("stale"))

	b.Fence()
	if !b.Down() || !b.Fenced() {
		t.Fatal("fenced broker not down")
	}
	if err := b.Publish("ex", []byte("x")); !errors.Is(err, ErrBrokerDown) {
		t.Fatalf("publish on fenced broker: %v", err)
	}
	if _, err := q.Get(); !errors.Is(err, ErrBrokerDown) {
		t.Fatalf("queue handle on fenced broker: %v", err)
	}
	b.Restart()
	if !b.Down() {
		t.Fatal("Restart revived a fenced broker")
	}

	// Crash-then-fence (partitioned primary fenced while down) pins too.
	b2 := New()
	_, _ = b2.DeclareQueue("q", 0)
	b2.Crash()
	b2.Fence()
	b2.Restart()
	if !b2.Down() {
		t.Fatal("Restart revived a crashed-then-fenced broker")
	}
	// ShipLog from a fenced broker fails closed.
	if _, _, ok := b.ShipLog(0); ok {
		t.Fatal("fenced broker shipped log records")
	}
}
