package broker

// Log shipping: the primitives a broker cluster uses to keep a warm
// follower per shard. The primary's queue log is already the complete
// durable state (Restart rebuilds everything from it), so replication
// is just shipping that log: the follower pulls batches of records
// after its cursor, and on promotion constructs a live broker from
// them exactly the way Restart would — pending messages in publish
// order, delivered-but-unacked messages re-flagged Redelivered, dead-
// letter parks and cumulative counters intact.
//
// Catch-up follows the DBLog watermark pattern (PAPERS.md): a joining
// or lagging follower takes SnapshotLog — the already-maintained
// compacted state plus live tail, captured under a brief lock without
// pausing the primary — and continues shipping the live log from the
// returned cursor. ShipLog reports ok=false when compaction has
// rewritten history past the follower's cursor, which is the signal to
// restart from snapshot.

// ReplRecord is one queue-log record in shippable (exported) form.
type ReplRecord struct {
	Op           uint8
	Queue        string
	Exchange     string
	ID           uint64
	Payload      []byte
	N            int
	N64          int64
	Delivered    bool
	DeadLettered bool
}

func toRecords(entries []logEntry) []ReplRecord {
	recs := make([]ReplRecord, len(entries))
	for i, e := range entries {
		recs[i] = ReplRecord{
			Op: uint8(e.op), Queue: e.queue, Exchange: e.exchange,
			ID: e.id, Payload: e.payload, N: e.n, N64: e.n64,
			Delivered: e.delivered, DeadLettered: e.deadLettered,
		}
	}
	return recs
}

func fromRecords(recs []ReplRecord) []logEntry {
	entries := make([]logEntry, len(recs))
	for i, r := range recs {
		entries[i] = logEntry{
			op: logOp(r.Op), queue: r.Queue, exchange: r.Exchange,
			id: r.ID, payload: r.Payload, n: r.N, n64: r.N64,
			delivered: r.Delivered, deadLettered: r.DeadLettered,
		}
	}
	return entries
}

// LogSeq reports the log's current append cursor — the total records
// ever appended, monotonic across compactions.
func (b *Broker) LogSeq() uint64 {
	b.log.mu.Lock()
	defer b.log.mu.Unlock()
	return b.log.seq
}

// ShipLog returns the records appended at or after cursor since, plus
// the cursor to resume from. ok=false means compaction has rewritten
// history past since and the follower must restart from SnapshotLog.
// A crashed broker ships nothing (the caller sees the crash via Down
// and drives failover instead).
func (b *Broker) ShipLog(since uint64) (recs []ReplRecord, next uint64, ok bool) {
	if b.Down() {
		return nil, since, false
	}
	entries, next, ok := b.log.shipSince(since)
	if !ok {
		return nil, next, false
	}
	return toRecords(entries), next, true
}

// SnapshotLog returns the full current log — compacted prefix plus
// live tail — and the cursor to continue shipping from. The capture is
// a brief lock, never a pause: appends proceed the moment it returns.
func (b *Broker) SnapshotLog() (recs []ReplRecord, next uint64) {
	entries, next := b.log.snapshot()
	return toRecords(entries), next
}

// FromReplica constructs a live broker from shipped log records: the
// promotion step. The new broker replays the records exactly like
// Restart — delivered-but-unacked messages come back at the front of
// their queues flagged Redelivered (their acks, if any, died with the
// old primary) — and is immediately serving. Its own log restarts a
// fresh cursor space seeded with the records, so the new primary can
// be shipped from in turn.
func FromReplica(recs []ReplRecord) *Broker {
	b := New()
	entries := fromRecords(recs)
	b.log.entries = append(b.log.entries, entries...)
	b.log.seq = uint64(len(entries))
	// Message-id allocation must clear every id the records mention, or
	// fresh publishes on the promoted broker would collide with
	// replicated messages in the queue log.
	for i := range entries {
		if entries[i].id > b.seq {
			b.seq = entries[i].id
		}
	}
	b.down = true
	b.Restart()
	return b
}

// CompactReplica rewrites shipped records as the minimal set that
// reproduces their replayed state — the follower-side compaction. A
// follower applies it periodically so its buffered log is bounded by
// the primary's live state, not by traffic history. The result is only
// for buffering and eventual FromReplica: record positions change, so
// it must never be mixed with a ship cursor taken before the call.
func CompactReplica(recs []ReplRecord) []ReplRecord {
	l := newQueueLog()
	l.entries = fromRecords(recs)
	l.compactLocked()
	return toRecords(l.entries)
}
