package broker

// itemDeque is a growable ring buffer holding a queue's pending items.
// The broker's hot mutations are pop-from-front (delivery) and
// push-to-front (nack/fail requeue, redelivery after restart); a plain
// slice makes the front-insert O(n) — `append([]*item{it}, pending...)`
// copies the whole queue per nack — while the ring makes every deque
// operation O(1) amortized with no per-operation allocation.
type itemDeque struct {
	buf  []*item // power-of-two length, so index math is a mask
	head int
	n    int
}

// Len reports the number of queued items.
func (d *itemDeque) Len() int { return d.n }

// At returns the i-th item from the front without removing it.
func (d *itemDeque) At(i int) *item {
	return d.buf[(d.head+i)&(len(d.buf)-1)]
}

// PushBack appends an item at the tail.
func (d *itemDeque) PushBack(it *item) {
	if d.n == len(d.buf) {
		d.grow()
	}
	d.buf[(d.head+d.n)&(len(d.buf)-1)] = it
	d.n++
}

// PushFront inserts an item at the head (next to be delivered).
func (d *itemDeque) PushFront(it *item) {
	if d.n == len(d.buf) {
		d.grow()
	}
	d.head = (d.head - 1) & (len(d.buf) - 1)
	d.buf[d.head] = it
	d.n++
}

// PopFront removes and returns the head item; nil when empty.
func (d *itemDeque) PopFront() *item {
	if d.n == 0 {
		return nil
	}
	it := d.buf[d.head]
	d.buf[d.head] = nil
	d.head = (d.head + 1) & (len(d.buf) - 1)
	d.n--
	return it
}

// Clear drops every item, releasing the references but keeping the ring.
func (d *itemDeque) Clear() {
	for i := 0; i < d.n; i++ {
		d.buf[(d.head+i)&(len(d.buf)-1)] = nil
	}
	d.head, d.n = 0, 0
}

func (d *itemDeque) grow() {
	c := len(d.buf) * 2
	if c == 0 {
		c = 16
	}
	buf := make([]*item, c)
	for i := 0; i < d.n; i++ {
		buf[i] = d.buf[(d.head+i)&(len(d.buf)-1)]
	}
	d.buf = buf
	d.head = 0
}
