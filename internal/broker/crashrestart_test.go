package broker

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"
)

// TestCrashRestartBasics walks the contract end to end: down-state
// errors, durability of pending messages, redelivery of unacked
// in-flight messages, and invalidation of pre-crash handles.
func TestCrashRestartBasics(t *testing.T) {
	b := New()
	q, _ := b.DeclareQueue("sub", 0)
	if err := b.Bind("sub", "pub"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := b.Publish("pub", []byte(fmt.Sprintf("m%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	// Take m0 in flight but never ack it.
	d, err := q.Get()
	if err != nil {
		t.Fatal(err)
	}
	if string(d.Payload) != "m0" {
		t.Fatalf("got %q, want m0", d.Payload)
	}

	b.Crash()
	if !b.Down() {
		t.Fatal("Down() should report true after Crash")
	}
	if err := b.Publish("pub", []byte("lost")); !errors.Is(err, ErrBrokerDown) {
		t.Fatalf("Publish while down: got %v, want ErrBrokerDown", err)
	}
	if got, err := b.DeclareQueue("other", 0); !errors.Is(err, ErrBrokerDown) || got != nil {
		t.Fatalf("DeclareQueue while down: got (%v, %v), want (nil, ErrBrokerDown)", got, err)
	}
	// The old handle is defunct for every operation.
	if err := q.Ack(d.Tag); !errors.Is(err, ErrBrokerDown) {
		t.Fatalf("Ack on crashed handle: got %v, want ErrBrokerDown", err)
	}
	if _, err := q.Get(); !errors.Is(err, ErrBrokerDown) {
		t.Fatalf("Get on crashed handle: got %v, want ErrBrokerDown", err)
	}

	b.Restart()
	if b.Down() {
		t.Fatal("Down() should report false after Restart")
	}
	q2, ok := b.Queue("sub")
	if !ok {
		t.Fatal("queue lost across restart")
	}
	if q2 == q {
		t.Fatal("Restart should produce a fresh queue handle")
	}
	// The unacked m0 is redelivered first, flagged; then m1, m2 fresh.
	want := []struct {
		payload     string
		redelivered bool
	}{{"m0", true}, {"m1", false}, {"m2", false}}
	for i, w := range want {
		d, err := q2.Get()
		if err != nil {
			t.Fatal(err)
		}
		if string(d.Payload) != w.payload || d.Redelivered != w.redelivered {
			t.Fatalf("delivery %d: got (%q, redelivered=%v), want (%q, %v)",
				i, d.Payload, d.Redelivered, w.payload, w.redelivered)
		}
		if err := q2.Ack(d.Tag); err != nil {
			t.Fatal(err)
		}
	}
	// Binding survived too: a fresh publish still lands.
	if err := b.Publish("pub", []byte("m3")); err != nil {
		t.Fatal(err)
	}
	if d, err := q2.Get(); err != nil || string(d.Payload) != "m3" {
		t.Fatalf("post-restart publish: %q, %v", d.Payload, err)
	}
}

// TestCrashWakesBlockedConsumer proves a consumer parked in GetBatch is
// woken with ErrBrokerDown rather than hanging across the crash.
func TestCrashWakesBlockedConsumer(t *testing.T) {
	b := New()
	q, _ := b.DeclareQueue("sub", 0)
	errc := make(chan error, 1)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, err := q.Get()
		errc <- err
	}()
	time.Sleep(10 * time.Millisecond)
	b.Crash()
	select {
	case err := <-errc:
		if !errors.Is(err, ErrBrokerDown) {
			t.Fatalf("blocked Get returned %v, want ErrBrokerDown", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("blocked consumer not woken by Crash")
	}
	wg.Wait()
}

// TestRestartPreservesDeadLettersAndAttempts: parked messages, failure
// counts, and the max-attempts policy all survive a bounce.
func TestRestartPreservesDeadLettersAndAttempts(t *testing.T) {
	b := New()
	q, _ := b.DeclareQueue("sub", 0)
	q.SetMaxAttempts(2)
	_ = b.Bind("sub", "pub")
	if err := b.Publish("pub", []byte("poison")); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		d, err := q.Get()
		if err != nil {
			t.Fatal(err)
		}
		dead, err := q.NackError(d.Tag)
		if err != nil {
			t.Fatal(err)
		}
		if want := i == 1; dead != want {
			t.Fatalf("attempt %d: deadLettered=%v, want %v", i, dead, want)
		}
	}
	if q.DeadLetterCount() != 1 || q.DeadLettered() != 1 {
		t.Fatalf("park state: count=%d total=%d", q.DeadLetterCount(), q.DeadLettered())
	}

	b.Crash()
	b.Restart()
	q2, _ := b.Queue("sub")
	if q2.DeadLetterCount() != 1 {
		t.Fatalf("dead letters lost across restart: %d", q2.DeadLetterCount())
	}
	if q2.DeadLettered() != 1 {
		t.Fatalf("cumulative dead-letter count lost: %d", q2.DeadLettered())
	}
	if n := q2.ReplayDeadLetters(); n != 1 {
		t.Fatalf("ReplayDeadLetters = %d, want 1", n)
	}
	d, err := q2.Get()
	if err != nil || string(d.Payload) != "poison" {
		t.Fatalf("replayed delivery: %q, %v", d.Payload, err)
	}
	if d.Attempts != 0 {
		t.Fatalf("replayed attempts = %d, want 0 (reset)", d.Attempts)
	}
	// Policy survived: two more failures park it again.
	if _, err := q2.NackError(d.Tag); err != nil {
		t.Fatal(err)
	}
	d, err = q2.Get()
	if err != nil {
		t.Fatal(err)
	}
	dead, err := q2.NackError(d.Tag)
	if err != nil || !dead {
		t.Fatalf("max-attempts policy lost across restart: dead=%v err=%v", dead, err)
	}
}

// TestRestartPreservesDecommission: a queue killed by overflow stays
// dead after a bounce (the subscriber must still re-bootstrap).
func TestRestartPreservesDecommission(t *testing.T) {
	b := New()
	q, _ := b.DeclareQueue("sub", 2)
	_ = b.Bind("sub", "pub")
	for i := 0; i < 3; i++ {
		_ = b.Publish("pub", []byte("m"))
	}
	if !q.Dead() {
		t.Fatal("queue should decommission past maxLen")
	}
	b.Crash()
	b.Restart()
	q2, _ := b.Queue("sub")
	if !q2.Dead() {
		t.Fatal("decommission must survive restart")
	}
}

// TestBrokerCrashRestartProperty is the acceptance property: across
// seeded random schedules of publishes, consumes, acks, nacks, and
// crash/restart cycles, no published-and-unconsumed message is ever
// lost, no acked message reappears, and unacked in-flight messages are
// redelivered exactly once — each message's final fate is exactly one
// of {acked, drained-once}.
func TestBrokerCrashRestartProperty(t *testing.T) {
	seeds := 10
	steps := 400
	if testing.Short() {
		seeds, steps = 4, 150
	}
	for seed := 1; seed <= seeds; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(int64(seed)))
			b := New()
			q, _ := b.DeclareQueue("q", 0)
			if err := b.Bind("q", "ex"); err != nil {
				t.Fatal(err)
			}
			published := make(map[string]bool)
			acked := make(map[string]bool)
			inflight := make(map[uint64]string)
			deliveredOnce := make(map[string]bool)
			next := 0
			for step := 0; step < steps; step++ {
				switch rng.Intn(12) {
				case 0, 1, 2, 3: // publish
					p := fmt.Sprintf("m%d", next)
					next++
					if err := b.Publish("ex", []byte(p)); err == nil {
						published[p] = true
					} else if !errors.Is(err, ErrBrokerDown) {
						t.Fatalf("Publish: %v", err)
					}
				case 4, 5, 6, 7: // consume
					d, ok, err := q.TryGet()
					if err == nil && ok {
						p := string(d.Payload)
						if deliveredOnce[p] && !d.Redelivered {
							t.Fatalf("second delivery of %s not flagged Redelivered", p)
						}
						deliveredOnce[p] = true
						inflight[d.Tag] = p
					}
				case 8: // ack one in-flight delivery
					for tag, p := range inflight {
						if err := q.Ack(tag); err == nil {
							acked[p] = true
						}
						delete(inflight, tag)
						break
					}
				case 9: // hand one back unprocessed
					for tag := range inflight {
						_ = q.Nack(tag, true)
						delete(inflight, tag)
						break
					}
				case 10: // failed processing attempt
					for tag := range inflight {
						_, _ = q.NackError(tag)
						delete(inflight, tag)
						break
					}
				case 11: // broker bounce
					b.Crash()
					inflight = make(map[uint64]string)
					b.Restart()
					nq, ok := b.Queue("q")
					if !ok {
						t.Fatal("queue lost across restart")
					}
					q = nq
				}
			}
			// Final bounce (drops any still-in-flight tags), then drain.
			b.Crash()
			b.Restart()
			q, _ = b.Queue("q")
			drained := make(map[string]int)
			for {
				d, ok, err := q.TryGet()
				if err != nil {
					t.Fatalf("drain: %v", err)
				}
				if !ok {
					break
				}
				drained[string(d.Payload)]++
				if err := q.Ack(d.Tag); err != nil {
					t.Fatalf("drain ack: %v", err)
				}
			}
			for p := range published {
				switch {
				case acked[p]:
					if drained[p] != 0 {
						t.Errorf("acked message %s reappeared %d times", p, drained[p])
					}
				case drained[p] != 1:
					t.Errorf("message %s drained %d times, want exactly 1", p, drained[p])
				}
			}
			for p := range drained {
				if !published[p] {
					t.Errorf("drained unknown message %s", p)
				}
			}
		})
	}
}

// TestQueueLogCompaction: sustained traffic must not grow the log
// without bound, and a bounce right after compaction still restores
// the live state.
func TestQueueLogCompaction(t *testing.T) {
	b := New()
	q, _ := b.DeclareQueue("q", 0)
	_ = b.Bind("q", "ex")
	for i := 0; i < 3*compactEvery; i++ {
		if err := b.Publish("ex", []byte(fmt.Sprintf("m%d", i))); err != nil {
			t.Fatal(err)
		}
		d, err := q.Get()
		if err != nil {
			t.Fatal(err)
		}
		if err := q.Ack(d.Tag); err != nil {
			t.Fatal(err)
		}
	}
	if size := b.LogSize(); size > compactEvery+8 {
		t.Fatalf("log grew to %d entries despite compaction", size)
	}
	// Leave two live messages and bounce: compacted log must carry them.
	_ = b.Publish("ex", []byte("a"))
	_ = b.Publish("ex", []byte("b"))
	b.Crash()
	b.Restart()
	q, _ = b.Queue("q")
	if q.Len() != 2 {
		t.Fatalf("live messages after compacted restart: %d, want 2", q.Len())
	}
	for _, want := range []string{"a", "b"} {
		d, err := q.Get()
		if err != nil || string(d.Payload) != want {
			t.Fatalf("got %q/%v, want %q", d.Payload, err, want)
		}
		_ = q.Ack(d.Tag)
	}
}
