package broker

import (
	"fmt"
	"math/rand"
	"testing"
)

// TestDequeMatchesReferenceSlice drives the ring deque and a plain-slice
// reference through the same random operation stream and compares them
// after every step, catching wraparound and growth bugs.
func TestDequeMatchesReferenceSlice(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var d itemDeque
	var ref []*item
	next := 0
	for step := 0; step < 20000; step++ {
		switch op := rng.Intn(10); {
		case op < 4: // PushBack
			it := &item{id: uint64(next)}
			next++
			d.PushBack(it)
			ref = append(ref, it)
		case op < 7: // PushFront
			it := &item{id: uint64(next)}
			next++
			d.PushFront(it)
			ref = append([]*item{it}, ref...)
		case op < 9: // PopFront
			it := d.PopFront()
			if len(ref) == 0 {
				if it != nil {
					t.Fatalf("step %d: PopFront on empty returned %v", step, it)
				}
				continue
			}
			if it != ref[0] {
				t.Fatalf("step %d: PopFront = %d, want %d", step, it.id, ref[0].id)
			}
			ref = ref[1:]
		default: // Clear, occasionally
			if rng.Intn(50) == 0 {
				d.Clear()
				ref = nil
			}
		}
		if d.Len() != len(ref) {
			t.Fatalf("step %d: Len = %d, want %d", step, d.Len(), len(ref))
		}
		if len(ref) > 0 {
			i := rng.Intn(len(ref))
			if d.At(i) != ref[i] {
				t.Fatalf("step %d: At(%d) = %v, want %v", step, i, d.At(i), ref[i])
			}
		}
	}
}

func TestDequeWraparoundGrowth(t *testing.T) {
	var d itemDeque
	// Force the head off zero so growth has to unwrap the ring.
	for i := 0; i < 12; i++ {
		d.PushBack(&item{id: uint64(i)})
	}
	for i := 0; i < 8; i++ {
		d.PopFront()
	}
	for i := 12; i < 40; i++ { // crosses the 16 -> 32 growth with head != 0
		d.PushBack(&item{id: uint64(i)})
	}
	if d.Len() != 32 {
		t.Fatalf("Len = %d, want 32", d.Len())
	}
	for i := 8; i < 40; i++ {
		it := d.PopFront()
		if it == nil || it.id != uint64(i) {
			t.Fatalf("PopFront = %v, want id %d", it, i)
		}
	}
	if it := d.PopFront(); it != nil {
		t.Fatalf("drained deque returned %v", it)
	}
}

// BenchmarkFrontInsert pins the satellite claim: requeueing at the head
// of a deep queue is O(1) on the ring deque versus O(n) for the old
// append([]*item{it}, pending...) slice idiom.
func BenchmarkFrontInsert(b *testing.B) {
	for _, depth := range []int{1000, 100000} {
		b.Run(fmt.Sprintf("deque-%d", depth), func(b *testing.B) {
			var d itemDeque
			for i := 0; i < depth; i++ {
				d.PushBack(&item{id: uint64(i)})
			}
			it := &item{}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				d.PushFront(it)
				d.PopFront()
			}
		})
		b.Run(fmt.Sprintf("slice-%d", depth), func(b *testing.B) {
			pending := make([]*item, depth)
			for i := range pending {
				pending[i] = &item{id: uint64(i)}
			}
			it := &item{}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				pending = append([]*item{it}, pending...)
				pending = pending[1:]
			}
		})
	}
}

// BenchmarkNackRequeue measures the end-to-end broker path the deque
// optimizes: deliver + NackError against a queue with a deep backlog.
// The backlog stays under the durable log's compaction threshold
// (compactEvery) so occasional snapshot rewrites do not perturb the
// deque work being measured.
func BenchmarkNackRequeue(b *testing.B) {
	br := New()
	q, _ := br.DeclareQueue("sub", 0)
	if err := br.Bind("sub", "pub"); err != nil {
		b.Fatal(err)
	}
	payload := []byte(`{"app":"pub"}`)
	for i := 0; i < compactEvery/2; i++ {
		if err := br.Publish("pub", payload); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d, ok, err := q.TryGet()
		if err != nil || !ok {
			b.Fatal(err, ok)
		}
		if _, err := q.NackError(d.Tag); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPublishFanout measures the publish path against bound queues;
// the copy-on-write bindings remove the per-call slice clone. Each
// iteration drains what it published so queue depth stays constant —
// letting backlogs grow past the durable log's compaction threshold
// would make every append re-snapshot the backlog (O(n) per publish)
// and swamp the binding cost under measurement.
func BenchmarkPublishFanout(b *testing.B) {
	br := New()
	queues := make([]*Queue, 8)
	for i := range queues {
		name := fmt.Sprintf("sub%d", i)
		queues[i], _ = br.DeclareQueue(name, 0)
		if err := br.Bind(name, "pub"); err != nil {
			b.Fatal(err)
		}
	}
	payload := []byte(`{"app":"pub"}`)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := br.Publish("pub", payload); err != nil {
			b.Fatal(err)
		}
		for _, q := range queues {
			d, ok, err := q.TryGet()
			if err != nil || !ok {
				b.Fatal(err, ok)
			}
			if err := q.Ack(d.Tag); err != nil {
				b.Fatal(err)
			}
		}
	}
}
