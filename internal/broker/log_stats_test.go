package broker

import (
	"fmt"
	"testing"
)

// TestStatsSurviveRestart (satellite fix): Redelivered and MaxDepthSeen
// are cumulative observability counters; like the dead-letter total
// they must ride the log through crash/restart instead of silently
// resetting under the bench gate.
func TestStatsSurviveRestart(t *testing.T) {
	b := New()
	q, _ := b.DeclareQueue("q", 0)
	_ = b.Bind("q", "ex")
	for i := 0; i < 8; i++ {
		_ = b.Publish("ex", []byte(fmt.Sprintf("m%d", i)))
	}
	// Three redeliveries: nack-requeue three messages and take them again.
	for i := 0; i < 3; i++ {
		d, _ := q.Get()
		_ = q.Nack(d.Tag, true)
		d, _ = q.Get()
		_ = q.Ack(d.Tag)
	}
	wantRedeliv, wantDepth := q.Redelivered(), q.MaxDepthSeen()
	if wantRedeliv != 3 {
		t.Fatalf("pre-crash Redelivered = %d, want 3", wantRedeliv)
	}
	if wantDepth != 8 {
		t.Fatalf("pre-crash MaxDepthSeen = %d, want 8", wantDepth)
	}

	b.Crash()
	b.Restart()
	q, _ = b.Queue("q")
	if got := q.Redelivered(); got != wantRedeliv {
		t.Fatalf("Redelivered after restart = %d, want %d", got, wantRedeliv)
	}
	if got := q.MaxDepthSeen(); got != wantDepth {
		t.Fatalf("MaxDepthSeen after restart = %d, want %d", got, wantDepth)
	}
}

// TestStatsSurviveCompactionAndRestart: the counters must also survive
// the log rewriting itself — compaction folds them into opQueueStats
// lines the same way it preserves opDeadCount.
func TestStatsSurviveCompactionAndRestart(t *testing.T) {
	b := New()
	q, _ := b.DeclareQueue("q", 0)
	_ = b.Bind("q", "ex")
	// One early redelivery, then enough acked churn to compact the log
	// several times over.
	_ = b.Publish("ex", []byte("early"))
	d, _ := q.Get()
	_ = q.Nack(d.Tag, true)
	d, _ = q.Get()
	_ = q.Ack(d.Tag)
	for i := 0; i < 2*compactEvery; i++ {
		_ = b.Publish("ex", []byte("churn"))
		d, _ := q.Get()
		_ = q.Ack(d.Tag)
	}
	if b.LogSize() > compactEvery+8 {
		t.Fatalf("log never compacted: %d entries", b.LogSize())
	}
	wantRedeliv, wantDepth := q.Redelivered(), q.MaxDepthSeen()
	if wantRedeliv < 1 {
		t.Fatalf("pre-crash Redelivered = %d, want >= 1", wantRedeliv)
	}

	b.Crash()
	b.Restart()
	q, _ = b.Queue("q")
	if got := q.Redelivered(); got != wantRedeliv {
		t.Fatalf("Redelivered after compacted restart = %d, want %d", got, wantRedeliv)
	}
	if got := q.MaxDepthSeen(); got != wantDepth {
		t.Fatalf("MaxDepthSeen after compacted restart = %d, want %d", got, wantDepth)
	}
	// And the counters replicate: a promoted follower reports them too.
	r := FromReplica(func() []ReplRecord { recs, _ := b.SnapshotLog(); return recs }())
	rq, _ := r.Queue("q")
	if got := rq.Redelivered(); got != wantRedeliv {
		t.Fatalf("replica Redelivered = %d, want %d", got, wantRedeliv)
	}
}

// TestCompactionInterleavedWithDecommission (satellite): the op
// sequence the cluster log-shipper replicates mid-compaction — a queue
// decommissions, the log compacts around it, and the tombstone must
// survive both the rewrite and a restart.
func TestCompactionInterleavedWithDecommission(t *testing.T) {
	b := New()
	q, _ := b.DeclareQueue("victim", 4)
	_ = b.Bind("victim", "vex")
	churn, _ := b.DeclareQueue("churn", 0)
	_ = b.Bind("churn", "cex")

	// Overflow the victim: maxLen 4 means the 5th pending message kills it.
	for i := 0; i < 5; i++ {
		_ = b.Publish("vex", []byte("overflow"))
	}
	if !q.Dead() {
		t.Fatal("victim not decommissioned at overflow")
	}
	// Compact with the tombstone in the log.
	for i := 0; i < 2*compactEvery; i++ {
		_ = b.Publish("cex", []byte("c"))
		d, _ := churn.Get()
		_ = churn.Ack(d.Tag)
	}
	if b.LogSize() > compactEvery+8 {
		t.Fatalf("log never compacted: %d entries", b.LogSize())
	}
	b.Crash()
	b.Restart()
	q, ok := b.Queue("victim")
	if !ok {
		t.Fatal("decommissioned queue vanished from restart (must survive as tombstone)")
	}
	if !q.Dead() {
		t.Fatal("decommission lost across compaction + restart")
	}
	// The shipped form carries the tombstone too.
	recs, _ := b.SnapshotLog()
	rq, ok := FromReplica(recs).Queue("victim")
	if !ok || !rq.Dead() {
		t.Fatal("decommission lost across replication")
	}
	// Recovery path still works: delete and re-declare.
	b.DeleteQueue("victim")
	q2, err := b.DeclareQueue("victim", 4)
	if err != nil || q2.Dead() {
		t.Fatalf("re-declare after decommission: dead=%v err=%v", q2.Dead(), err)
	}
}

// TestCompactionInterleavedWithDeadLetterReplay (satellite): parked
// messages and their replay must survive compactions landing between
// the park, the replay, and the restart.
func TestCompactionInterleavedWithDeadLetterReplay(t *testing.T) {
	b := New()
	q, _ := b.DeclareQueue("q", 0)
	_ = b.Bind("q", "ex")
	q.SetMaxAttempts(2)

	// Park a poison message.
	_ = b.Publish("ex", []byte("poison"))
	for i := 0; i < 2; i++ {
		d, err := q.Get()
		if err != nil {
			t.Fatal(err)
		}
		_, _ = q.NackError(d.Tag)
	}
	if q.DeadLetterCount() != 1 {
		t.Fatalf("dead letters = %d, want 1", q.DeadLetterCount())
	}
	// Compact with the park in place.
	for i := 0; i < 2*compactEvery; i++ {
		_ = b.Publish("ex", []byte("c"))
		d, _ := q.Get()
		_ = q.Ack(d.Tag)
	}
	b.Crash()
	b.Restart()
	q, _ = b.Queue("q")
	if q.DeadLetterCount() != 1 || q.DeadLettered() != 1 {
		t.Fatalf("park lost: count=%d total=%d", q.DeadLetterCount(), q.DeadLettered())
	}
	// Replay, then compact again: the replayed message is live with a
	// reset failure budget, and the cumulative total still reads 1.
	if n := q.ReplayDeadLetters(); n != 1 {
		t.Fatalf("ReplayDeadLetters = %d, want 1", n)
	}
	for i := 0; i < 2*compactEvery; i++ {
		_ = b.Publish("ex", []byte("c"))
		d, _ := q.Get()
		if string(d.Payload) == "poison" {
			// Interleaved replay delivery: process it this time.
			_ = q.Ack(d.Tag)
			continue
		}
		_ = q.Ack(d.Tag)
	}
	b.Crash()
	b.Restart()
	q, _ = b.Queue("q")
	if q.DeadLetterCount() != 0 {
		t.Fatalf("replayed park reappeared: %d", q.DeadLetterCount())
	}
	if q.DeadLettered() != 1 {
		t.Fatalf("cumulative dead-letter total = %d, want 1", q.DeadLettered())
	}
}
