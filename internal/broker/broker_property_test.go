package broker

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

// TestQuickAtLeastOnce drives random consume/ack/nack schedules and
// checks the at-least-once contract: with no loss injection, every
// published message is eventually acked, and requeued messages are
// redelivered rather than dropped.
func TestQuickAtLeastOnce(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		b := New()
		q, _ := b.DeclareQueue("s", 0)
		if err := b.Bind("s", "p"); err != nil {
			return false
		}
		const n = 100
		for i := 0; i < n; i++ {
			b.Publish("p", []byte(fmt.Sprintf("m%d", i)))
		}
		acked := make(map[string]bool)
		inflight := make(map[uint64]string)
		for len(acked) < n {
			// Random schedule: consume, ack, or requeue.
			switch rng.Intn(4) {
			case 0, 1:
				d, ok, err := q.TryGet()
				if err != nil {
					return false
				}
				if ok {
					inflight[d.Tag] = string(d.Payload)
				}
			case 2:
				for tag, payload := range inflight {
					if err := q.Ack(tag); err != nil {
						return false
					}
					acked[payload] = true
					delete(inflight, tag)
					break
				}
			case 3:
				for tag := range inflight {
					if err := q.Nack(tag, true); err != nil {
						return false
					}
					delete(inflight, tag)
					break
				}
			}
			// Invariant: pending + unacked + acked covers everything.
			if q.Len()+q.Unacked()+len(acked) < n {
				return false
			}
		}
		return q.Len() == 0 && q.Unacked() == 0
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
