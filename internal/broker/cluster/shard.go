package cluster

import (
	"sync"
	"sync/atomic"
	"time"

	"synapse/internal/broker"
)

// shard is one hash partition: a primary broker, its lease identity,
// and the follower state (the shipped log buffer) the agent maintains.
// All mutation happens in the shard's agent goroutine or under mu.
type shard struct {
	idx int

	mu       sync.Mutex
	primary  *broker.Broker
	owner    string // lease owner identity of the current primary
	gen      uint64 // fencing epoch the current primary holds
	instance int    // bumps per promotion; distinguishes lease owners

	// Follower: the shipped log and its cursor into the primary's seq
	// space. lastCompact is the buffer length after the last follower-
	// side compaction (doubling trigger, like the primary's own log).
	buf         []broker.ReplRecord
	cursor      uint64
	lastCompact int

	// admit serializes publish admission when Config.ServiceTime is set.
	admit sync.Mutex

	stop chan struct{}
	done chan struct{}
}

func (s *shard) broker() *broker.Broker {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.primary
}

// followerCompactAt mirrors the primary log's compaction threshold.
const followerCompactAt = 4096

// agent is the per-shard maintenance loop: every tick it renews the
// primary's lease, ships the log to the follower, and — when the lease
// has lapsed — promotes the follower. One goroutine per shard, so all
// three steps are naturally serialized per shard.
func (c *Cluster) agent(s *shard) {
	defer close(s.done)
	t := time.NewTicker(c.cfg.ShipInterval)
	defer t.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-t.C:
			c.tickShard(s)
		}
	}
}

func (c *Cluster) tickShard(s *shard) {
	s.mu.Lock()
	p := s.primary
	owner := s.owner
	cursor := s.cursor
	instance := s.instance
	s.mu.Unlock()

	alive := !p.Down()

	// 1. Heartbeat: the primary renews its lease over its own coord
	// link — a partitioned primary stops renewing, which IS the failure
	// detection. If the lease lapsed but nobody claimed it (a quick
	// bounce, a scheduler stall), the primary re-acquires under a bumped
	// epoch and carries on.
	if alive {
		var reEpoch uint64
		_ = c.netDo(EndpointShard(s.idx), endpointCoord, func() error {
			if !c.coord.Renew(leaseName(s.idx), owner, c.cfg.LeaseTTL) {
				if held, epoch := c.coord.Acquire(leaseName(s.idx), owner, c.cfg.LeaseTTL); held {
					reEpoch = epoch
				}
			}
			return nil
		})
		if reEpoch > 0 {
			s.mu.Lock()
			if s.primary == p && reEpoch > s.gen {
				s.gen = reEpoch
			}
			s.mu.Unlock()
		}
	}

	// 2. Ship: the follower pulls the log tail over the replica link.
	// A cursor compaction outran falls back to the DBLog snapshot —
	// captured under a brief lock, never pausing the primary.
	if alive {
		var recs []broker.ReplRecord
		var next uint64
		var snap bool
		err := c.netDo(EndpointReplica(s.idx), EndpointShard(s.idx), func() error {
			var ok bool
			recs, next, ok = p.ShipLog(cursor)
			if !ok {
				recs, next = p.SnapshotLog()
				snap = true
			}
			return nil
		})
		if err == nil {
			s.mu.Lock()
			if s.primary == p {
				if snap {
					s.buf = recs
					s.lastCompact = len(recs)
					atomic.AddInt64(&c.snapshots, 1)
				} else {
					s.buf = append(s.buf, recs...)
				}
				s.cursor = next
				atomic.AddInt64(&c.shipped, int64(len(recs)))
				// Bound follower memory by live state, not history.
				if n := len(s.buf); n >= followerCompactAt && n >= 2*s.lastCompact {
					s.buf = broker.CompactReplica(s.buf)
					s.lastCompact = len(s.buf)
				}
			}
			s.mu.Unlock()
		}
	}

	// 3. Failover: the follower bids for the lease over its own coord
	// link. The bid only succeeds once the primary has been silent past
	// the TTL — crash, coord partition, or fence — and success carries
	// the bumped fencing epoch that makes the promotion safe.
	cand := ownerName(s.idx, instance+1)
	var held bool
	var epoch uint64
	if err := c.netDo(EndpointReplica(s.idx), endpointCoord, func() error {
		held, epoch = c.coord.Acquire(leaseName(s.idx), cand, c.cfg.LeaseTTL)
		return nil
	}); err != nil || !held {
		return
	}
	c.promote(s, p, cand, epoch)
}

// promote replaces shard s's primary with a broker built from the
// shipped log. The old primary is fenced FIRST — even if it is still
// alive on the far side of a partition, it can never serve again, so
// acked state the promoted follower lacks cannot be double-delivered
// after the heal. Then the follower buffer replays into a live broker
// and the control-plane metadata (declarations, bindings) is re-
// applied on top, covering anything declared after the last ship.
func (c *Cluster) promote(s *shard, old *broker.Broker, owner string, epoch uint64) {
	s.mu.Lock()
	if s.primary != old || epoch <= s.gen {
		s.mu.Unlock()
		return
	}
	buf := s.buf
	s.mu.Unlock()

	old.Fence()
	nb := broker.FromReplica(buf)
	c.applyMetadata(s.idx, nb)

	s.mu.Lock()
	s.primary = nb
	s.owner = owner
	s.gen = epoch
	s.instance++
	s.buf, s.cursor = nb.SnapshotLog()
	s.lastCompact = len(s.buf)
	s.mu.Unlock()

	atomic.AddInt64(&c.failovers, 1)
	// Bump the shard generation for observers (the §4.4 pattern: state
	// handoff announced through the coordinator).
	c.coord.Increment(GenCounter(s.idx))
}

// applyMetadata reconciles a broker against the control plane: declare
// every queue and binding the front-end knows for this shard, and drop
// replicated queues the control plane has since deleted.
func (c *Cluster) applyMetadata(idx int, b *broker.Broker) {
	type decl struct {
		name   string
		maxLen int
	}
	type bind struct{ queue, exchange string }
	c.mu.Lock()
	var decls []decl
	for name, meta := range c.queues {
		if c.ShardOf(name) == idx {
			decls = append(decls, decl{name, meta.maxLen})
		}
	}
	var binds []bind
	for ex, qs := range c.bindings {
		for _, qn := range qs {
			if c.ShardOf(qn) == idx {
				binds = append(binds, bind{qn, ex})
			}
		}
	}
	c.mu.Unlock()
	for _, d := range decls {
		_, _ = b.DeclareQueue(d.name, d.maxLen)
	}
	for _, bd := range binds {
		_ = b.Bind(bd.queue, bd.exchange)
	}
	declared := make(map[string]bool, len(decls))
	for _, d := range decls {
		declared[d.name] = true
	}
	for _, qn := range b.Queues() {
		if !declared[qn] {
			b.DeleteQueue(qn)
		}
	}
}
