package cluster

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"synapse/internal/broker"
	"synapse/internal/coord"
	"synapse/internal/netsim"
)

// pickQueue finds a queue name that hashes onto the wanted shard.
func pickQueue(c *Cluster, shard int, prefix string) string {
	for i := 0; ; i++ {
		name := fmt.Sprintf("%s-%d", prefix, i)
		if c.ShardOf(name) == shard {
			return name
		}
	}
}

// waitFor polls cond up to 2s.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestRoutingFanoutAcrossShards(t *testing.T) {
	c := New(Config{Shards: 4, Coord: coord.New()})
	defer c.Close()
	// One queue per shard, all bound to one exchange: a publish must
	// reach every shard that holds a binding.
	names := make([]string, 4)
	for i := range names {
		names[i] = pickQueue(c, i, "q")
		if _, err := c.DeclareQueue(names[i], 0); err != nil {
			t.Fatal(err)
		}
		if err := c.Bind(names[i], "ex"); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Publish("ex", []byte("fanout")); err != nil {
		t.Fatal(err)
	}
	for i, name := range names {
		q, ok := c.Queue(name)
		if !ok {
			t.Fatalf("queue %s lost", name)
		}
		d, err := q.Get()
		if err != nil || string(d.Payload) != "fanout" {
			t.Fatalf("shard %d delivery = %q/%v", i, d.Payload, err)
		}
		_ = q.Ack(d.Tag)
	}
	if c.Published() != 1 {
		t.Fatalf("Published = %d, want 1", c.Published())
	}
}

func TestCrashPromotesFollower(t *testing.T) {
	c := New(Config{Shards: 2, Coord: coord.New(), ShipInterval: time.Millisecond})
	defer c.Close()
	name := pickQueue(c, 0, "q")
	if _, err := c.DeclareQueue(name, 0); err != nil {
		t.Fatal(err)
	}
	if err := c.Bind(name, "ex"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := c.Publish("ex", []byte(fmt.Sprintf("m%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	q, _ := c.Queue(name)
	if _, err := q.Get(); err != nil { // m0 in flight, ack lost with the crash
		t.Fatal(err)
	}
	// Let the follower catch up past the last publish.
	waitFor(t, "follower catch-up", func() bool {
		s := c.shards[0]
		s.mu.Lock()
		defer s.mu.Unlock()
		return s.cursor == s.primary.LogSeq()
	})

	c.CrashShard(0)
	waitFor(t, "failover", func() bool { return c.Failovers() == 1 && !c.ShardDown(0) })

	q2, ok := c.Queue(name)
	if !ok {
		t.Fatal("queue missing after promotion")
	}
	// m0's delivery died with the old primary: redelivered first, then
	// the rest in publish order.
	d, err := q2.Get()
	if err != nil || string(d.Payload) != "m0" || !d.Redelivered {
		t.Fatalf("first post-failover delivery = %q (redelivered=%v, err=%v)", d.Payload, d.Redelivered, err)
	}
	_ = q2.Ack(d.Tag)
	for _, want := range []string{"m1", "m2", "m3", "m4"} {
		d, err := q2.Get()
		if err != nil || string(d.Payload) != want {
			t.Fatalf("post-failover delivery = %q/%v, want %q", d.Payload, err, want)
		}
		_ = q2.Ack(d.Tag)
	}
	// New primary serves fresh traffic; the shard generation moved.
	if err := c.Publish("ex", []byte("fresh")); err != nil {
		t.Fatal(err)
	}
	if d, err := q2.Get(); err != nil || string(d.Payload) != "fresh" {
		t.Fatalf("fresh delivery = %q/%v", d.Payload, err)
	}
	if c.Generation(0) < 2 {
		t.Fatalf("generation = %d, want >= 2 after promotion", c.Generation(0))
	}
	// The other shard never noticed.
	if c.ShardDown(1) || c.Failovers() != 1 {
		t.Fatalf("shard 1 disturbed: down=%v failovers=%d", c.ShardDown(1), c.Failovers())
	}
}

func TestBounceWithinLeaseKeepsPrimary(t *testing.T) {
	// Generous TTL: the restart lands long before the lease lapses, so
	// the same instance recovers from its own log — no promotion.
	c := New(Config{Shards: 1, Coord: coord.New(), ShipInterval: time.Millisecond, LeaseTTL: 200 * time.Millisecond})
	defer c.Close()
	name := pickQueue(c, 0, "q")
	_, _ = c.DeclareQueue(name, 0)
	_ = c.Bind(name, "ex")
	_ = c.Publish("ex", []byte("survives"))

	c.CrashShard(0)
	c.RestartShard(0)
	time.Sleep(30 * time.Millisecond) // several ticks: no failover must fire
	if got := c.Failovers(); got != 0 {
		t.Fatalf("failovers = %d after in-lease bounce, want 0", got)
	}
	q, ok := c.Queue(name)
	if !ok {
		t.Fatal("queue lost across bounce")
	}
	if d, err := q.Get(); err != nil || string(d.Payload) != "survives" {
		t.Fatalf("post-bounce delivery = %q/%v", d.Payload, err)
	}
}

func TestCoordIsolationFencesLivePrimary(t *testing.T) {
	net := netsim.New(1)
	c := New(Config{Shards: 1, Coord: coord.New(), Net: net, ShipInterval: time.Millisecond})
	defer c.Close()
	name := pickQueue(c, 0, "q")
	_, _ = c.DeclareQueue(name, 0)
	_ = c.Bind(name, "ex")
	_ = c.Publish("ex", []byte("pre"))
	waitFor(t, "follower catch-up", func() bool {
		s := c.shards[0]
		s.mu.Lock()
		defer s.mu.Unlock()
		return s.cursor == s.primary.LogSeq()
	})
	old := c.shards[0].broker()

	// The primary loses sight of the coordinator while staying alive:
	// its lease lapses, the follower takes it, and the split brain is
	// resolved by fencing — the old primary must never serve again.
	net.Partition(EndpointShard(0), "coord")
	waitFor(t, "forced promotion", func() bool { return c.Failovers() == 1 })
	if !old.Fenced() {
		t.Fatal("superseded primary not fenced")
	}
	net.Heal(EndpointShard(0), "coord")

	// The healed partition cannot resurrect it.
	old.Restart()
	if !old.Down() {
		t.Fatal("fenced primary restarted after heal")
	}
	// The promoted primary carries the shipped state and serves.
	q, ok := c.Queue(name)
	if !ok {
		t.Fatal("queue lost in forced promotion")
	}
	if d, err := q.Get(); err != nil || string(d.Payload) != "pre" {
		t.Fatalf("post-promotion delivery = %q/%v", d.Payload, err)
	}
	if err := c.Publish("ex", []byte("post")); err != nil {
		t.Fatal(err)
	}
	if d, err := q.Get(); err != nil || string(d.Payload) != "post" {
		t.Fatalf("post-promotion publish = %q/%v", d.Payload, err)
	}
}

func TestMetadataReappliedDespiteShipLag(t *testing.T) {
	net := netsim.New(1)
	c := New(Config{Shards: 1, Coord: coord.New(), Net: net, ShipInterval: time.Millisecond})
	defer c.Close()

	// Cut replication, then declare and bind: the follower buffer never
	// sees either. The control plane must carry them through promotion.
	net.Partition(EndpointReplica(0), EndpointShard(0))
	name := pickQueue(c, 0, "late")
	if _, err := c.DeclareQueue(name, 0); err != nil {
		t.Fatal(err)
	}
	if err := c.Bind(name, "ex"); err != nil {
		t.Fatal(err)
	}
	c.CrashShard(0)
	waitFor(t, "failover", func() bool { return c.Failovers() == 1 })

	if _, ok := c.Queue(name); !ok {
		t.Fatal("control-plane queue lost in promotion (ship lag)")
	}
	if err := c.Publish("ex", []byte("works")); err != nil {
		t.Fatal(err)
	}
	q, _ := c.Queue(name)
	if d, err := q.Get(); err != nil || string(d.Payload) != "works" {
		t.Fatalf("binding lost in promotion: %q/%v", d.Payload, err)
	}
}

func TestPublishDuringFailoverFailsBrokerDown(t *testing.T) {
	c := New(Config{Shards: 2, Coord: coord.New(), ShipInterval: time.Millisecond, LeaseTTL: 100 * time.Millisecond})
	defer c.Close()
	name := pickQueue(c, 0, "q")
	_, _ = c.DeclareQueue(name, 0)
	_ = c.Bind(name, "ex")
	c.CrashShard(0)
	// Inside the failover window: publishes fail like a down broker, so
	// app publishers take the journal-and-defer path.
	if err := c.Publish("ex", []byte("x")); !errors.Is(err, broker.ErrBrokerDown) {
		t.Fatalf("publish during failover window: %v, want ErrBrokerDown", err)
	}
	if c.Down() {
		t.Fatal("one crashed shard reported whole-cluster down")
	}
}

// TestAckMultiSurvivesFailover proves the coalesced-ack path is as
// durable on a sharded cluster as single acks: AckMulti's per-tag log
// entries ship to the follower, so a promoted follower does not
// redeliver the batch-acked messages.
func TestAckMultiSurvivesFailover(t *testing.T) {
	c := New(Config{Shards: 2, Coord: coord.New(), ShipInterval: time.Millisecond})
	defer c.Close()
	name := pickQueue(c, 0, "q")
	if _, err := c.DeclareQueue(name, 0); err != nil {
		t.Fatal(err)
	}
	if err := c.Bind(name, "ex"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if err := c.Publish("ex", []byte(fmt.Sprintf("m%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	q, _ := c.Queue(name)
	batch, err := q.GetBatch(4)
	if err != nil {
		t.Fatal(err)
	}
	tags := make([]uint64, 0, len(batch))
	for _, d := range batch {
		tags = append(tags, d.Tag)
	}
	if err := q.AckMulti(tags); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "follower catch-up", func() bool {
		s := c.shards[0]
		s.mu.Lock()
		defer s.mu.Unlock()
		return s.cursor == s.primary.LogSeq()
	})

	c.CrashShard(0)
	waitFor(t, "failover", func() bool { return c.Failovers() == 1 && !c.ShardDown(0) })

	q2, ok := c.Queue(name)
	if !ok {
		t.Fatal("queue missing after promotion")
	}
	// Only the two never-delivered messages remain; none of the four
	// batch-acked ones come back.
	for _, want := range []string{"m4", "m5"} {
		d, err := q2.Get()
		if err != nil || string(d.Payload) != want {
			t.Fatalf("post-failover delivery = %q/%v, want %q", d.Payload, err, want)
		}
		if err := q2.AckMulti([]uint64{d.Tag}); err != nil {
			t.Fatal(err)
		}
	}
	if q2.Len() != 0 || q2.Unacked() != 0 {
		t.Fatalf("Len=%d Unacked=%d after drain", q2.Len(), q2.Unacked())
	}
}
