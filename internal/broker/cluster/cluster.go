// Package cluster turns the single in-process broker into a sharded,
// replicated broker fabric — the clustered RabbitMQ deployment of
// §4.4 scaled past one node. A Cluster front-end hash-partitions
// queues across N broker shards; each shard runs one primary broker
// plus a warm follower that tails the primary's queue log over the
// simulated network (so latency, drops, and partitions apply to
// replication itself); and a per-shard agent elects the primary with
// an expiring coordinator lease. When the primary crashes — or is
// partitioned from the coordinator long enough for its lease to lapse
// — the follower acquires the lease under a bumped fencing epoch,
// fences the old primary permanently, and promotes its shipped log
// into a live broker: pending messages in publish order, delivered-
// but-unacked messages re-flagged Redelivered.
//
// Replication is asynchronous: a failover can lose the unshipped log
// suffix. The surrounding Synapse machinery is built for exactly this
// failure class (§6.5 message loss): publishers journal-and-defer
// failed sends, deliveries are at-least-once behind the per-object
// version guard, and full-state messages make convergence heal any
// gap — the chaos harness asserts it.
//
// Catch-up never pauses the primary: a follower whose cursor falls
// behind a log compaction refetches the DBLog-style snapshot (the
// already-maintained compacted state, captured under a brief lock) and
// resumes tailing from the returned cursor.
package cluster

import (
	"fmt"
	"hash/fnv"
	"sync"
	"sync/atomic"
	"time"

	"synapse/internal/broker"
	"synapse/internal/coord"
	"synapse/internal/netsim"
)

// Simulated-network endpoint names. The front-end name matches
// core.EndpointBroker, so apps keep addressing "broker" and the
// cluster's internal hops ride their own links.
const (
	endpointFront = "broker"
	endpointCoord = "coord"
)

// EndpointShard names shard i's primary broker on the network.
func EndpointShard(i int) string { return fmt.Sprintf("broker/shard%d", i) }

// EndpointReplica names shard i's follower on the network.
func EndpointReplica(i int) string { return EndpointShard(i) + "/replica" }

// Config parameterizes a cluster.
type Config struct {
	// Shards is the number of broker shards (default 1).
	Shards int
	// Coord is the coordinator holding the per-shard primary leases
	// (required; share it with the Fabric so everything elects through
	// the same reliability anchor).
	Coord *coord.Coordinator
	// Net, when non-nil, carries the cluster's internal traffic: lease
	// renewals (shard -> coord), log shipping (replica -> shard), and the
	// front-end -> shard hop of every publish/declare/bind.
	Net *netsim.Network
	// ShipInterval is the agent tick: lease renewal + one shipping pull
	// per shard (default 1ms).
	ShipInterval time.Duration
	// LeaseTTL is the primary lease duration; a primary silent for this
	// long is superseded. Clamped to at least 4 ship intervals so a
	// healthy primary cannot miss enough renewals to lose its lease.
	LeaseTTL time.Duration
	// ServiceTime, when positive, serializes publish admission per shard
	// for this long — modelling the bounded ingest capacity of a single
	// broker node, so aggregate throughput scales with shard count.
	ServiceTime time.Duration
}

func (c Config) withDefaults() Config {
	if c.Shards <= 0 {
		c.Shards = 1
	}
	if c.Coord == nil {
		c.Coord = coord.New()
	}
	if c.ShipInterval <= 0 {
		c.ShipInterval = time.Millisecond
	}
	if c.LeaseTTL < 4*c.ShipInterval {
		c.LeaseTTL = 4 * c.ShipInterval
	}
	return c
}

// queueMeta is the control-plane record of one declared queue.
type queueMeta struct {
	maxLen int
}

// Cluster is the sharded broker front-end. It satisfies core.Bus, so a
// Fabric routes all app messaging through it transparently.
type Cluster struct {
	cfg   Config
	coord *coord.Coordinator
	net   *netsim.Network

	// Control-plane metadata: declarations and bindings, owned by the
	// front-end and re-applied to a promoted follower. Replication would
	// carry them eventually, but a binding made after the last ship must
	// not vanish in a failover.
	mu       sync.Mutex
	queues   map[string]queueMeta
	bindings map[string][]string // exchange -> queue names, bind order
	closed   bool

	shards []*shard

	published int64 // atomic
	failovers int64 // atomic
	shipped   int64 // atomic: log records shipped to followers
	snapshots int64 // atomic: follower snapshot refetches
}

// New builds the cluster: every shard starts with a fresh primary
// holding its lease, an empty follower buffer, and a running agent.
func New(cfg Config) *Cluster {
	cfg = cfg.withDefaults()
	c := &Cluster{
		cfg:      cfg,
		coord:    cfg.Coord,
		net:      cfg.Net,
		queues:   make(map[string]queueMeta),
		bindings: make(map[string][]string),
	}
	for i := 0; i < cfg.Shards; i++ {
		b := broker.New()
		s := &shard{
			idx:     i,
			primary: b,
			owner:   ownerName(i, 0),
			stop:    make(chan struct{}),
			done:    make(chan struct{}),
		}
		// Construction-time election: no network yet to lose.
		if held, epoch := c.coord.Acquire(leaseName(i), s.owner, cfg.LeaseTTL); held {
			s.gen = epoch
		}
		s.buf, s.cursor = b.SnapshotLog()
		s.lastCompact = len(s.buf)
		c.shards = append(c.shards, s)
	}
	for _, s := range c.shards {
		go c.agent(s)
	}
	return c
}

func leaseName(i int) string { return fmt.Sprintf("cluster/shard%d", i) }

// GenCounter names the coordinator counter bumped on every promotion
// of shard i — observers watch it like a generation number.
func GenCounter(i int) string { return fmt.Sprintf("cluster/shard%d/gen", i) }

func ownerName(i, instance int) string {
	return fmt.Sprintf("broker/shard%d/inst%d", i, instance)
}

// Close stops every shard agent. The brokers stay readable (tests
// inspect them) but no further shipping or failover happens.
func (c *Cluster) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	c.mu.Unlock()
	for _, s := range c.shards {
		close(s.stop)
	}
	for _, s := range c.shards {
		<-s.done
	}
}

// ShardOf reports which shard owns the named queue.
func (c *Cluster) ShardOf(queue string) int {
	h := fnv.New32a()
	h.Write([]byte(queue))
	return int(h.Sum32()) % len(c.shards)
}

// Shards reports the shard count.
func (c *Cluster) Shards() int { return len(c.shards) }

func (c *Cluster) netDo(from, to string, fn func() error) error {
	if c.net != nil {
		return c.net.Do(from, to, fn)
	}
	return fn()
}

func (c *Cluster) netCall(from, to string) error {
	if c.net != nil {
		return c.net.Call(from, to)
	}
	return nil
}

// DeclareQueue records the queue in the control plane and declares it
// on its shard's primary. The front-end -> shard hop rides the network,
// so a partitioned or crashed shard fails the call like a down broker;
// the control-plane record survives either way and a promotion replays
// it.
func (c *Cluster) DeclareQueue(name string, maxLen int) (*broker.Queue, error) {
	c.mu.Lock()
	c.queues[name] = queueMeta{maxLen: maxLen}
	c.mu.Unlock()
	s := c.shards[c.ShardOf(name)]
	if err := c.netCall(endpointFront, EndpointShard(s.idx)); err != nil {
		return nil, err
	}
	return s.broker().DeclareQueue(name, maxLen)
}

// Queue returns the live handle for the named queue from its shard's
// current primary. During a failover window there is no live primary
// and the lookup misses; consumers retry and reattach, exactly as they
// do across a single-broker restart.
func (c *Cluster) Queue(name string) (*broker.Queue, bool) {
	return c.shards[c.ShardOf(name)].broker().Queue(name)
}

// DeleteQueue removes the queue from the control plane and its shard.
// The control-plane removal is what sticks: a follower promoted later
// drops any replicated queue the control plane no longer lists.
func (c *Cluster) DeleteQueue(name string) {
	c.mu.Lock()
	delete(c.queues, name)
	for ex, qs := range c.bindings {
		for i, qn := range qs {
			if qn == name {
				c.bindings[ex] = append(append([]string{}, qs[:i]...), qs[i+1:]...)
				break
			}
		}
	}
	c.mu.Unlock()
	c.shards[c.ShardOf(name)].broker().DeleteQueue(name)
}

// Bind records the binding in the control plane and applies it on the
// queue's shard.
func (c *Cluster) Bind(queueName, exchange string) error {
	c.mu.Lock()
	bound := false
	for _, qn := range c.bindings[exchange] {
		if qn == queueName {
			bound = true
			break
		}
	}
	if !bound {
		c.bindings[exchange] = append(c.bindings[exchange], queueName)
	}
	c.mu.Unlock()
	s := c.shards[c.ShardOf(queueName)]
	if err := c.netCall(endpointFront, EndpointShard(s.idx)); err != nil {
		return err
	}
	return s.broker().Bind(queueName, exchange)
}

// Publish fans the payload out to every shard holding a queue bound to
// the exchange. Shard deliveries are independent: one unreachable
// shard fails the call (the publisher journals and re-sends) but the
// reachable shards still got the message — the redundant re-delivery
// is absorbed by at-least-once semantics downstream.
func (c *Cluster) Publish(exchange string, payload []byte) error {
	c.mu.Lock()
	qs := c.bindings[exchange]
	want := make(map[int]bool, len(qs))
	for _, qn := range qs {
		want[c.ShardOf(qn)] = true
	}
	c.mu.Unlock()
	atomic.AddInt64(&c.published, 1)
	var firstErr error
	for _, s := range c.shards {
		if !want[s.idx] {
			continue
		}
		if err := c.publishShard(s, exchange, payload); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

func (c *Cluster) publishShard(s *shard, exchange string, payload []byte) error {
	if err := c.netCall(endpointFront, EndpointShard(s.idx)); err != nil {
		return err
	}
	if st := c.cfg.ServiceTime; st > 0 {
		// One publish at a time per shard node: the modelled ingest
		// capacity bound that sharding exists to multiply. Sleeping
		// (not spinning) keeps concurrent shards overlapping even on a
		// single-core host; callers should pick a ServiceTime well above
		// the host's timer granularity so the constant wakeup overhead
		// stays a small fraction of the modelled cost.
		s.admit.Lock()
		time.Sleep(st)
		s.admit.Unlock()
	}
	return s.broker().Publish(exchange, payload)
}

// ExchangePressure reports the worst overload signal across the shards
// holding queues bound to the exchange.
func (c *Cluster) ExchangePressure(exchange string) broker.Pressure {
	c.mu.Lock()
	qs := c.bindings[exchange]
	want := make(map[int]bool, len(qs))
	for _, qn := range qs {
		want[c.ShardOf(qn)] = true
	}
	c.mu.Unlock()
	p := broker.PressureNormal
	for _, s := range c.shards {
		if !want[s.idx] {
			continue
		}
		if sp := s.broker().ExchangePressure(exchange); sp > p {
			p = sp
		}
	}
	return p
}

// Down reports whether the whole cluster is unavailable — every shard
// primary down at once. A single failing shard is not "down": its
// queues' consumers ride the failover via reattach while the rest of
// the cluster keeps serving.
func (c *Cluster) Down() bool {
	for _, s := range c.shards {
		if !s.broker().Down() {
			return false
		}
	}
	return true
}

// CrashShard kills shard i's primary process. The queue log survives
// in-instance: a RestartShard before the lease lapses revives it; once
// the lease lapses the follower is promoted instead and the old
// primary is fenced for good.
func (c *Cluster) CrashShard(i int) { c.shards[i].broker().Crash() }

// RestartShard restarts shard i's primary from its queue log — a
// no-op if the failover already fenced it (the promoted follower is
// the primary now, and stale state must stay dead).
func (c *Cluster) RestartShard(i int) { c.shards[i].broker().Restart() }

// ShardDown reports whether shard i's current primary is down.
func (c *Cluster) ShardDown(i int) bool { return c.shards[i].broker().Down() }

// Published reports total Publish calls on the front-end.
func (c *Cluster) Published() int64 { return atomic.LoadInt64(&c.published) }

// Failovers reports completed follower promotions.
func (c *Cluster) Failovers() int64 { return atomic.LoadInt64(&c.failovers) }

// Shipped reports log records shipped to followers.
func (c *Cluster) Shipped() int64 { return atomic.LoadInt64(&c.shipped) }

// SnapshotFetches reports follower catch-ups that fell back to a full
// snapshot because compaction outran their cursor.
func (c *Cluster) SnapshotFetches() int64 { return atomic.LoadInt64(&c.snapshots) }

// LogSize reports the total queue-log entries across shard primaries.
func (c *Cluster) LogSize() int {
	n := 0
	for _, s := range c.shards {
		n += s.broker().LogSize()
	}
	return n
}

// CaughtUp reports whether shard i's follower has shipped the
// primary's entire log — the zero-lag point where a failover would
// lose nothing.
func (c *Cluster) CaughtUp(i int) bool {
	s := c.shards[i]
	s.mu.Lock()
	cursor := s.cursor
	p := s.primary
	s.mu.Unlock()
	return cursor == p.LogSeq()
}

// Generation reports shard i's current fencing epoch.
func (c *Cluster) Generation(i int) uint64 {
	s := c.shards[i]
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.gen
}
