package broker

import (
	"errors"
	"testing"

	"synapse/internal/faultinject"
)

func TestNackErrorRequeuesUntilMaxAttempts(t *testing.T) {
	b := New()
	q, _ := b.DeclareQueue("s", 0)
	q.SetMaxAttempts(3)
	_ = b.Bind("s", "p")
	b.Publish("p", []byte("poison"))
	b.Publish("p", []byte("good"))

	for attempt := 1; attempt <= 3; attempt++ {
		d, err := q.Get()
		if err != nil {
			t.Fatal(err)
		}
		if string(d.Payload) != "poison" {
			t.Fatalf("attempt %d delivered %q", attempt, d.Payload)
		}
		if d.Attempts != attempt-1 {
			t.Errorf("attempt %d: Attempts = %d, want %d", attempt, d.Attempts, attempt-1)
		}
		dead, err := q.NackError(d.Tag)
		if err != nil {
			t.Fatal(err)
		}
		if wantDead := attempt == 3; dead != wantDead {
			t.Fatalf("attempt %d: dead = %v, want %v", attempt, dead, wantDead)
		}
	}

	// The pool keeps draining past the parked message.
	d, err := q.Get()
	if err != nil || string(d.Payload) != "good" {
		t.Fatalf("after dead-letter: %q, %v", d.Payload, err)
	}
	_ = q.Ack(d.Tag)

	if q.DeadLetterCount() != 1 || q.DeadLettered() != 1 {
		t.Errorf("DeadLetterCount=%d DeadLettered=%d, want 1, 1", q.DeadLetterCount(), q.DeadLettered())
	}
	dls := q.DeadLetters()
	if len(dls) != 1 || string(dls[0].Payload) != "poison" || dls[0].Attempts != 3 {
		t.Errorf("DeadLetters = %+v", dls)
	}
}

func TestSpillNackDoesNotCountAsFailure(t *testing.T) {
	b := New()
	q, _ := b.DeclareQueue("s", 0)
	q.SetMaxAttempts(1)
	_ = b.Bind("s", "p")
	b.Publish("p", []byte("m"))

	// Prefetch handbacks (plain Nack) never dead-letter, no matter how
	// many times they happen.
	for i := 0; i < 5; i++ {
		d, _ := q.Get()
		if d.Attempts != 0 {
			t.Fatalf("spill %d bumped Attempts to %d", i, d.Attempts)
		}
		if err := q.Nack(d.Tag, true); err != nil {
			t.Fatal(err)
		}
	}
	if q.DeadLetterCount() != 0 {
		t.Fatalf("spill handbacks dead-lettered the message")
	}
	// One real failure hits the (tight) bound.
	d, _ := q.Get()
	if dead, _ := q.NackError(d.Tag); !dead {
		t.Fatal("failure nack did not dead-letter at maxAttempts=1")
	}
}

func TestReplayDeadLetters(t *testing.T) {
	b := New()
	q, _ := b.DeclareQueue("s", 0)
	q.SetMaxAttempts(1)
	_ = b.Bind("s", "p")
	b.Publish("p", []byte("a"))
	b.Publish("p", []byte("b"))
	for i := 0; i < 2; i++ {
		d, _ := q.Get()
		if dead, _ := q.NackError(d.Tag); !dead {
			t.Fatal("expected immediate dead-letter")
		}
	}
	if n := q.ReplayDeadLetters(); n != 2 {
		t.Fatalf("ReplayDeadLetters = %d, want 2", n)
	}
	if q.DeadLetterCount() != 0 {
		t.Error("set-aside list not cleared by replay")
	}
	if q.DeadLettered() != 2 {
		t.Errorf("DeadLettered = %d, want 2 (historical count survives replay)", q.DeadLettered())
	}
	// Replay preserves park order and resets the failure count, so each
	// message gets a fresh round of attempts.
	for _, want := range []string{"a", "b"} {
		d, err := q.Get()
		if err != nil {
			t.Fatal(err)
		}
		if string(d.Payload) != want || d.Attempts != 0 {
			t.Errorf("replayed delivery = %q attempts=%d, want %q attempts=0", d.Payload, d.Attempts, want)
		}
		_ = q.Ack(d.Tag)
	}
}

func TestNackErrorUnboundedByDefault(t *testing.T) {
	b := New()
	q, _ := b.DeclareQueue("s", 0)
	_ = b.Bind("s", "p")
	b.Publish("p", []byte("m"))
	for i := 0; i < 10; i++ {
		d, _ := q.Get()
		dead, err := q.NackError(d.Tag)
		if err != nil || dead {
			t.Fatalf("iteration %d: dead=%v err=%v (maxAttempts=0 must retry forever)", i, dead, err)
		}
	}
	if err := func() error { _, err := q.NackError(999); return err }(); !errors.Is(err, ErrBadTag) {
		t.Errorf("NackError bad tag = %v", err)
	}
}

func TestFaultBrokerDrop(t *testing.T) {
	b := New()
	q, _ := b.DeclareQueue("s", 0)
	_ = b.Bind("s", "p")
	faults := faultinject.New()
	b.SetFaults(faults)

	// Drop exactly the second delivery.
	faults.ArmN(FaultBrokerDrop, 1, 1, faultinject.Fail(errors.New("dropped")))
	b.Publish("p", []byte("m1"))
	b.Publish("p", []byte("m2")) // dropped between exchange and queue
	b.Publish("p", []byte("m3"))

	var got []string
	for {
		d, ok, err := q.TryGet()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		got = append(got, string(d.Payload))
		_ = q.Ack(d.Tag)
	}
	if len(got) != 2 || got[0] != "m1" || got[1] != "m3" {
		t.Errorf("delivered %v, want [m1 m3]", got)
	}
	if faults.Hits(FaultBrokerDrop) != 3 {
		t.Errorf("Hits = %d, want 3", faults.Hits(FaultBrokerDrop))
	}
}
