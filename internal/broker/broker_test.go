package broker

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestFanout(t *testing.T) {
	b := New()
	q1, _ := b.DeclareQueue("sub1", 0)
	q2, _ := b.DeclareQueue("sub2", 0)
	if err := b.Bind("sub1", "pub"); err != nil {
		t.Fatal(err)
	}
	if err := b.Bind("sub2", "pub"); err != nil {
		t.Fatal(err)
	}
	b.Publish("pub", []byte("m1"))
	for _, q := range []*Queue{q1, q2} {
		d, err := q.Get()
		if err != nil {
			t.Fatal(err)
		}
		if string(d.Payload) != "m1" || d.Exchange != "pub" {
			t.Errorf("delivery = %+v", d)
		}
		if err := q.Ack(d.Tag); err != nil {
			t.Fatal(err)
		}
	}
	if b.Published() != 1 {
		t.Errorf("Published = %d", b.Published())
	}
}

func TestBindIdempotentAndUnbound(t *testing.T) {
	b := New()
	q, _ := b.DeclareQueue("s", 0)
	_ = b.Bind("s", "p")
	_ = b.Bind("s", "p") // no double delivery
	b.Publish("p", []byte("x"))
	if q.Len() != 1 {
		t.Fatalf("Len = %d, want 1", q.Len())
	}
	// Messages to unbound exchanges go nowhere.
	b.Publish("other", []byte("y"))
	if q.Len() != 1 {
		t.Fatal("message from unbound exchange delivered")
	}
	if err := b.Bind("ghost", "p"); !errors.Is(err, ErrUnknownQueue) {
		t.Errorf("Bind unknown queue = %v", err)
	}
}

func TestUnbindStopsDelivery(t *testing.T) {
	b := New()
	q, _ := b.DeclareQueue("s", 0)
	_ = b.Bind("s", "p")
	b.Unbind("s", "p")
	b.Publish("p", []byte("x"))
	if q.Len() != 0 {
		t.Fatal("unbound queue received message")
	}
}

func TestFIFOAndAck(t *testing.T) {
	b := New()
	q, _ := b.DeclareQueue("s", 0)
	_ = b.Bind("s", "p")
	for i := 0; i < 5; i++ {
		b.Publish("p", []byte(fmt.Sprintf("m%d", i)))
	}
	for i := 0; i < 5; i++ {
		d, err := q.Get()
		if err != nil {
			t.Fatal(err)
		}
		if string(d.Payload) != fmt.Sprintf("m%d", i) {
			t.Errorf("got %s at position %d", d.Payload, i)
		}
		if err := q.Ack(d.Tag); err != nil {
			t.Fatal(err)
		}
	}
	if q.Len() != 0 || q.Unacked() != 0 {
		t.Errorf("Len=%d Unacked=%d after draining", q.Len(), q.Unacked())
	}
	if err := q.Ack(999); !errors.Is(err, ErrBadTag) {
		t.Errorf("Ack bad tag = %v", err)
	}
}

func TestNackRequeueFront(t *testing.T) {
	b := New()
	q, _ := b.DeclareQueue("s", 0)
	_ = b.Bind("s", "p")
	b.Publish("p", []byte("first"))
	b.Publish("p", []byte("second"))
	d, _ := q.Get()
	if err := q.Nack(d.Tag, true); err != nil {
		t.Fatal(err)
	}
	d2, _ := q.Get()
	if string(d2.Payload) != "first" || !d2.Redelivered {
		t.Errorf("redelivery = %+v", d2)
	}
	_ = q.Ack(d2.Tag)
	d3, _ := q.Get()
	if string(d3.Payload) != "second" || d3.Redelivered {
		t.Errorf("second delivery = %+v", d3)
	}
}

func TestNackDrop(t *testing.T) {
	b := New()
	q, _ := b.DeclareQueue("s", 0)
	_ = b.Bind("s", "p")
	b.Publish("p", []byte("gone"))
	d, _ := q.Get()
	if err := q.Nack(d.Tag, false); err != nil {
		t.Fatal(err)
	}
	if q.Len() != 0 || q.Unacked() != 0 {
		t.Error("dropped message still tracked")
	}
}

func TestGetBlocksUntilPublish(t *testing.T) {
	b := New()
	q, _ := b.DeclareQueue("s", 0)
	_ = b.Bind("s", "p")
	got := make(chan string, 1)
	go func() {
		d, err := q.Get()
		if err != nil {
			got <- "err:" + err.Error()
			return
		}
		got <- string(d.Payload)
	}()
	time.Sleep(10 * time.Millisecond)
	b.Publish("p", []byte("late"))
	select {
	case v := <-got:
		if v != "late" {
			t.Fatalf("got %q", v)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Get never woke")
	}
}

func TestTryGet(t *testing.T) {
	b := New()
	q, _ := b.DeclareQueue("s", 0)
	_ = b.Bind("s", "p")
	if _, ok, err := q.TryGet(); ok || err != nil {
		t.Fatalf("TryGet on empty = %v %v", ok, err)
	}
	b.Publish("p", []byte("x"))
	d, ok, err := q.TryGet()
	if !ok || err != nil || string(d.Payload) != "x" {
		t.Fatalf("TryGet = %+v %v %v", d, ok, err)
	}
}

func TestDecommissionOnOverflow(t *testing.T) {
	b := New()
	q, _ := b.DeclareQueue("s", 3)
	_ = b.Bind("s", "p")
	for i := 0; i < 4; i++ {
		b.Publish("p", []byte("x"))
	}
	if !q.Dead() {
		t.Fatal("queue not decommissioned after overflow")
	}
	if q.Len() != 0 {
		t.Error("decommissioned queue kept messages")
	}
	if _, err := q.Get(); !errors.Is(err, ErrDecommissioned) {
		t.Errorf("Get on dead queue = %v", err)
	}
	// Other queues are unaffected.
	q2, _ := b.DeclareQueue("s2", 0)
	_ = b.Bind("s2", "p")
	b.Publish("p", []byte("y"))
	if q2.Len() != 1 {
		t.Error("healthy queue affected by sibling decommission")
	}
}

func TestDecommissionWakesBlockedConsumer(t *testing.T) {
	b := New()
	q, _ := b.DeclareQueue("s", 1)
	_ = b.Bind("s", "p")
	errc := make(chan error, 1)
	go func() {
		// Consume the first message, do not ack, block on the next Get.
		d, err := q.Get()
		if err != nil {
			errc <- err
			return
		}
		_ = d
		_, err = q.Get()
		errc <- err
	}()
	b.Publish("p", []byte("1"))
	time.Sleep(10 * time.Millisecond)
	b.Publish("p", []byte("2"))
	b.Publish("p", []byte("3")) // overflow -> decommission
	select {
	case err := <-errc:
		if !errors.Is(err, ErrDecommissioned) {
			t.Fatalf("blocked Get = %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("blocked consumer never woke on decommission")
	}
}

func TestDeleteQueueRebootstrapCycle(t *testing.T) {
	b := New()
	q, _ := b.DeclareQueue("s", 1)
	_ = b.Bind("s", "p")
	b.Publish("p", []byte("1"))
	b.Publish("p", []byte("2")) // decommission
	if !q.Dead() {
		t.Fatal("expected dead queue")
	}
	b.DeleteQueue("s")
	if _, ok := b.Queue("s"); ok {
		t.Fatal("queue still registered after delete")
	}
	// Redeclare: fresh queue, must rebind.
	q2, _ := b.DeclareQueue("s", 10)
	if q2 == q {
		t.Fatal("DeclareQueue returned the dead queue")
	}
	b.Publish("p", []byte("x"))
	if q2.Len() != 0 {
		t.Fatal("fresh queue received without binding")
	}
	_ = b.Bind("s", "p")
	b.Publish("p", []byte("y"))
	if q2.Len() != 1 {
		t.Fatal("fresh queue not receiving after rebind")
	}
}

func TestLossInjection(t *testing.T) {
	b := New()
	q, _ := b.DeclareQueue("s", 0)
	_ = b.Bind("s", "p")
	n := 0
	b.SetLoss(func(queue, exchange string, payload []byte) bool {
		n++
		return n == 2 // drop exactly the second message
	})
	for i := 0; i < 3; i++ {
		b.Publish("p", []byte(fmt.Sprintf("m%d", i)))
	}
	if q.Len() != 2 {
		t.Fatalf("Len = %d, want 2 after one loss", q.Len())
	}
	d1, _ := q.Get()
	d2, _ := q.Get()
	if string(d1.Payload) != "m0" || string(d2.Payload) != "m2" {
		t.Errorf("surviving messages = %s, %s", d1.Payload, d2.Payload)
	}
}

func TestConcurrentConsumersNoDuplicates(t *testing.T) {
	b := New()
	q, _ := b.DeclareQueue("s", 0)
	_ = b.Bind("s", "p")
	const n = 500
	for i := 0; i < n; i++ {
		b.Publish("p", []byte(fmt.Sprintf("m%d", i)))
	}
	var mu sync.Mutex
	seen := make(map[string]int)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				d, ok, err := q.TryGet()
				if err != nil {
					t.Error(err)
					return
				}
				if !ok {
					return
				}
				mu.Lock()
				seen[string(d.Payload)]++
				mu.Unlock()
				if err := q.Ack(d.Tag); err != nil {
					t.Error(err)
				}
			}
		}()
	}
	wg.Wait()
	if len(seen) != n {
		t.Fatalf("consumed %d distinct messages, want %d", len(seen), n)
	}
	for msg, count := range seen {
		if count != 1 {
			t.Fatalf("message %s delivered %d times", msg, count)
		}
	}
}

func TestQueuesListing(t *testing.T) {
	b := New()
	b.DeclareQueue("beta", 0)
	b.DeclareQueue("alpha", 0)
	qs := b.Queues()
	if len(qs) != 2 || qs[0] != "alpha" || qs[1] != "beta" {
		t.Errorf("Queues = %v", qs)
	}
}

func TestGetBatchDrainsUpToMax(t *testing.T) {
	b := New()
	q, _ := b.DeclareQueue("sub", 0)
	if err := b.Bind("sub", "pub"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		b.Publish("pub", []byte(fmt.Sprintf("m%d", i)))
	}
	batch, err := q.GetBatch(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) != 3 {
		t.Fatalf("batch = %d deliveries, want 3", len(batch))
	}
	for i, d := range batch {
		if string(d.Payload) != fmt.Sprintf("m%d", i) {
			t.Errorf("batch[%d] = %q", i, d.Payload)
		}
		if err := q.Ack(d.Tag); err != nil {
			t.Fatal(err)
		}
	}
	rest, err := q.GetBatch(10)
	if err != nil {
		t.Fatal(err)
	}
	if len(rest) != 2 {
		t.Fatalf("rest = %d deliveries, want 2", len(rest))
	}
	if string(rest[0].Payload) != "m3" || string(rest[1].Payload) != "m4" {
		t.Errorf("rest = %q, %q", rest[0].Payload, rest[1].Payload)
	}
}

func TestGetBatchBlocksLikeGet(t *testing.T) {
	b := New()
	q, _ := b.DeclareQueue("sub", 0)
	if err := b.Bind("sub", "pub"); err != nil {
		t.Fatal(err)
	}
	got := make(chan []Delivery, 1)
	go func() {
		batch, err := q.GetBatch(4)
		if err != nil {
			t.Error(err)
			return
		}
		got <- batch
	}()
	select {
	case <-got:
		t.Fatal("GetBatch returned on empty queue")
	case <-time.After(10 * time.Millisecond):
	}
	b.Publish("pub", []byte("m"))
	select {
	case batch := <-got:
		if len(batch) != 1 {
			t.Fatalf("batch = %d deliveries, want 1", len(batch))
		}
	case <-time.After(time.Second):
		t.Fatal("GetBatch did not wake")
	}
}

// TestGetBatchFairShare: a consumer must not drain the whole queue while
// other consumers are blocked waiting — each blocked waiter is left a
// share of the pending messages.
func TestGetBatchFairShare(t *testing.T) {
	b := New()
	q, _ := b.DeclareQueue("sub", 0)
	if err := b.Bind("sub", "pub"); err != nil {
		t.Fatal(err)
	}
	const waiters = 3
	sizes := make(chan int, waiters)
	var wg sync.WaitGroup
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			batch, err := q.GetBatch(16)
			if err != nil {
				t.Error(err)
				return
			}
			sizes <- len(batch)
			for _, d := range batch {
				_ = q.Ack(d.Tag)
			}
		}()
	}
	// Let all three consumers block, then release 9 messages at once.
	time.Sleep(20 * time.Millisecond)
	q.mu.Lock()
	for i := 0; i < 9; i++ {
		q.pending.PushBack(&item{payload: []byte("m"), exchange: "pub"})
	}
	q.cond.Broadcast()
	q.mu.Unlock()
	wg.Wait()
	close(sizes)
	total := 0
	for n := range sizes {
		if n == 0 || n > 8 {
			t.Errorf("batch size %d outside fair range", n)
		}
		total += n
	}
	if rem := q.Len(); total+rem != 9 {
		t.Errorf("consumed %d + pending %d, want 9 total", total, rem)
	}
}

func TestGetBatchCancelAndDecommission(t *testing.T) {
	b := New()
	q, _ := b.DeclareQueue("sub", 0)
	errs := make(chan error, 1)
	go func() {
		_, err := q.GetBatch(8)
		errs <- err
	}()
	time.Sleep(10 * time.Millisecond)
	q.CancelWaiters()
	if err := <-errs; !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
}

func TestStarving(t *testing.T) {
	b := New()
	q, _ := b.DeclareQueue("sub", 0)
	if err := b.Bind("sub", "pub"); err != nil {
		t.Fatal(err)
	}
	if q.Starving() {
		t.Fatal("no waiters yet, queue reports starving")
	}
	got := make(chan struct{})
	go func() {
		if _, err := q.Get(); err != nil {
			t.Error(err)
		}
		close(got)
	}()
	waitUntil := time.Now().Add(time.Second)
	for !q.Starving() && time.Now().Before(waitUntil) {
		time.Sleep(time.Millisecond)
	}
	if !q.Starving() {
		t.Fatal("blocked waiter on empty queue, Starving() = false")
	}
	b.Publish("pub", []byte("m"))
	<-got
	if q.Starving() {
		t.Fatal("no blocked waiters left, queue still reports starving")
	}
}

// TestDecommissionCountsUnacked: messages held unacked by a prefetching
// consumer still count against the queue bound — a stuck consumer must
// not mask the overflow that triggers decommission (§4.4).
func TestDecommissionCountsUnacked(t *testing.T) {
	b := New()
	q, _ := b.DeclareQueue("s", 3)
	_ = b.Bind("s", "p")
	for i := 0; i < 3; i++ {
		b.Publish("p", []byte("x"))
	}
	// A consumer drains everything into unacked; pending is now empty.
	batch, err := q.GetBatch(3)
	if err != nil || len(batch) != 3 {
		t.Fatalf("GetBatch = %d msgs, %v", len(batch), err)
	}
	if q.Dead() {
		t.Fatal("queue died below the bound")
	}
	b.Publish("p", []byte("x"))
	if !q.Dead() {
		t.Fatal("overflow hidden by unacked prefetch batch")
	}
}

func TestAckMulti(t *testing.T) {
	b := New()
	q, _ := b.DeclareQueue("s", 0)
	_ = b.Bind("s", "p")
	for i := 0; i < 6; i++ {
		b.Publish("p", []byte(fmt.Sprintf("m%d", i)))
	}
	batch, err := q.GetBatch(6)
	if err != nil {
		t.Fatal(err)
	}
	tags := make([]uint64, 0, len(batch))
	for _, d := range batch {
		tags = append(tags, d.Tag)
	}

	// A batch containing one stale tag still acks every valid tag and
	// reports the staleness as ErrBadTag.
	if err := q.AckMulti(append(tags[:4:4], 9999)); !errors.Is(err, ErrBadTag) {
		t.Fatalf("AckMulti with stale tag = %v, want ErrBadTag", err)
	}
	if got := q.Unacked(); got != 2 {
		t.Fatalf("Unacked after partial AckMulti = %d, want 2", got)
	}
	if err := q.AckMulti(tags[4:]); err != nil {
		t.Fatal(err)
	}
	if q.Len() != 0 || q.Unacked() != 0 {
		t.Errorf("Len=%d Unacked=%d after AckMulti drain", q.Len(), q.Unacked())
	}
	if err := q.AckMulti(nil); err != nil {
		t.Errorf("empty AckMulti = %v", err)
	}

	// The batched acks must be as durable as single acks: after a
	// crash/restart log replay, none of the acked messages reappear.
	b.Publish("p", []byte("tail"))
	b.Crash()
	b.Restart()
	q2, ok := b.Queue("s")
	if !ok {
		t.Fatal("queue lost across restart")
	}
	if got := q2.Len(); got != 1 {
		t.Fatalf("Len after restart = %d, want 1 (only the unacked tail)", got)
	}
	d, err := q2.Get()
	if err != nil {
		t.Fatal(err)
	}
	if string(d.Payload) != "tail" {
		t.Fatalf("replayed %q, want tail", d.Payload)
	}
}
