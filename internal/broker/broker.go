// Package broker implements the reliable publish/subscribe message
// broker Synapse rides on (RabbitMQ in the paper's deployment, §4).
//
// Topology follows the paper: each publisher app owns a fanout exchange;
// each subscriber app owns one durable queue bound to the exchanges of
// every publisher it subscribes to. Queue messages are consumed by many
// workers in parallel, acked after persistence, and redelivered on nack.
//
// Two failure behaviours from the paper are modelled directly:
//
//   - Queue-length decommission (§4.4): if a subscriber stays down and
//     its queue exceeds its limit, the broker kills the queue; the
//     subscriber must partial-bootstrap when it returns.
//   - Message loss (§6.5): even reliable brokers lose messages in rare
//     operational events (the RabbitMQ upgrade incident). An injectable
//     loss function drops messages between exchange and queue so the
//     recovery paths can be exercised.
package broker

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"synapse/internal/faultinject"
)

// FaultBrokerDrop is the named fault site consulted once per (queue,
// message) delivery: an armed fault that returns an error drops the
// message between the exchange and that queue, modelling the rare
// message-loss events of §6.5 deterministically (SetLoss remains for
// probabilistic loss).
const FaultBrokerDrop = "broker/drop"

// Errors returned by queue operations.
var (
	ErrClosed         = errors.New("broker: queue closed")
	ErrDecommissioned = errors.New("broker: queue decommissioned")
	ErrUnknownQueue   = errors.New("broker: unknown queue")
	ErrBadTag         = errors.New("broker: unknown delivery tag")
	ErrCanceled       = errors.New("broker: consume canceled")
	// ErrBrokerDown is returned by every operation — publishes, consumes,
	// acks — between Crash() and Restart(), and forever by queue handles
	// obtained before a crash (a reconnecting consumer must re-fetch its
	// queue from the restarted broker).
	ErrBrokerDown = errors.New("broker: broker is down")
)

// Delivery is one message handed to a consumer. It must be Acked or
// Nacked on its queue.
type Delivery struct {
	Payload     []byte
	Tag         uint64
	Redelivered bool
	Exchange    string
	// Attempts counts prior FAILED processing attempts (NackError calls)
	// for this message — 0 on first delivery. Spill handbacks via Nack do
	// not count. Consumers use it to scale their retry backoff.
	Attempts int
}

type item struct {
	id          uint64 // log identity, unique per (queue, enqueue)
	payload     []byte
	exchange    string
	redelivered bool
	delivered   bool // handed to a consumer at least once
	fails       int
	enq         time.Time // when the item entered this queue's pending deque
}

// Pressure is a queue's overload signal to its publishers. It is the
// soft counterpart of the §4.4 decommission cliff: past the high
// watermark the queue asks publishers to degrade (throttle, defer,
// shed) long before the hard maxLen bound would cut the subscriber off.
type Pressure int

const (
	// PressureNormal: depth below the high watermark and the oldest
	// pending message younger than the age watermark.
	PressureNormal Pressure = iota
	// PressureHigh: the queue crossed its soft high watermark and has
	// not yet drained back to the low watermark (hysteresis), or its
	// oldest pending message exceeds the age watermark (a stalled
	// consumer pressures publishers even at modest depth).
	PressureHigh
)

// LossFunc decides whether to drop a message on its way into a queue.
type LossFunc func(queue, exchange string, payload []byte) bool

// Broker routes published messages from exchanges to bound queues.
type Broker struct {
	mu        sync.Mutex
	bindings  map[string][]*Queue // exchange -> queues
	queues    map[string]*Queue
	loss      LossFunc
	faults    *faultinject.Registry
	published int64
	down      bool
	fenced    bool   // permanently down: a promoted replica superseded this instance
	seq       uint64 // message-id source for the queue log
	log       *queueLog
}

// New returns an empty broker.
func New() *Broker {
	return &Broker{
		bindings: make(map[string][]*Queue),
		queues:   make(map[string]*Queue),
		log:      newQueueLog(),
	}
}

// Crash models broker process death: all in-memory routing and queue
// state is wiped, every operation fails with ErrBrokerDown, and every
// outstanding queue handle — including consumers blocked in GetBatch —
// is woken with ErrBrokerDown. Only the queue log (the modelled disk)
// survives; Restart replays it.
func (b *Broker) Crash() {
	b.mu.Lock()
	if b.down {
		b.mu.Unlock()
		return
	}
	b.down = true
	old := make([]*Queue, 0, len(b.queues))
	for _, q := range b.queues {
		old = append(old, q)
	}
	b.queues = make(map[string]*Queue)
	b.bindings = make(map[string][]*Queue)
	b.mu.Unlock()
	for _, q := range old {
		q.fail(ErrBrokerDown)
	}
}

// Restart brings a crashed broker back by replaying the queue log:
// queues and bindings are rebuilt, pending messages reappear in
// publish order, delivered-but-unacked messages return to the front of
// their queues flagged Redelivered (their ack was lost with the
// crash), dead-letter parks and failure counts survive, and acked
// messages stay gone. Pre-crash queue handles and delivery tags remain
// invalid; consumers must re-fetch their queue.
func (b *Broker) Restart() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.down || b.fenced {
		return
	}
	st := b.log.replay()
	now := time.Now()
	b.queues = make(map[string]*Queue, len(st.queues))
	b.bindings = make(map[string][]*Queue)
	for name, rq := range st.queues {
		q := newQueue(name, rq.maxLen, b.log)
		q.maxAttempts = rq.maxAttempts
		q.dead = rq.dead
		q.deadLettered = rq.deadCount
		// Cumulative observability counters survive the restart the same
		// way the dead-letter total does: the log carries them (opRedeliver
		// entries plus the opQueueStats snapshot line), so post-restart
		// Stats never silently reset under the bench gate.
		q.redeliveredTotal = rq.redelivered
		q.maxDepthSeen = rq.maxDepth
		var redo, fresh []*item
		for _, id := range rq.order {
			m := rq.msgs[id]
			// Ages restart at the recovery time: the crash gap is broker
			// downtime, not consumer slowness, so it must not trip the
			// age watermark the moment the queue comes back.
			it := &item{
				id: m.id, payload: m.payload, exchange: m.exchange,
				fails: m.fails, delivered: m.delivered, redelivered: m.delivered,
				enq: now,
			}
			switch {
			case m.deadLettered:
				q.setAside = append(q.setAside, it)
			case m.delivered:
				// Unacked in-flight at crash time: redeliver first,
				// preserving their publish order among themselves.
				redo = append(redo, it)
			default:
				fresh = append(fresh, it)
			}
		}
		for _, it := range redo {
			q.pending.PushBack(it)
		}
		for _, it := range fresh {
			q.pending.PushBack(it)
		}
		b.queues[name] = q
	}
	for ex, qnames := range st.bindings {
		for _, qn := range qnames {
			if q, ok := b.queues[qn]; ok {
				b.bindings[ex] = append(b.bindings[ex], q)
			}
		}
	}
	b.down = false
}

// Down reports whether the broker is crashed.
func (b *Broker) Down() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.down
}

// Fence takes the broker down permanently: every operation fails with
// ErrBrokerDown, every queue handle is woken defunct, and Restart
// refuses to revive it. A cluster fences a superseded primary so that,
// after a partition heals, its stale state — messages a promoted
// replica has since acked away — can never be served or double-
// delivered again (the generation number its lease lost is the fence).
func (b *Broker) Fence() {
	b.mu.Lock()
	if b.fenced {
		b.mu.Unlock()
		return
	}
	b.fenced = true
	b.mu.Unlock()
	b.Crash()
	// Crash returns early when already down; mark down unconditionally so
	// a crash-then-fence sequence still pins the broker down forever.
	b.mu.Lock()
	b.down = true
	b.mu.Unlock()
}

// Fenced reports whether the broker has been permanently superseded.
func (b *Broker) Fenced() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.fenced
}

// LogSize reports the queue-log entry count (tests, compaction).
func (b *Broker) LogSize() int { return b.log.size() }

// SetLoss installs (or clears, with nil) the loss-injection function.
func (b *Broker) SetLoss(f LossFunc) {
	b.mu.Lock()
	b.loss = f
	b.mu.Unlock()
}

// SetFaults installs (or clears, with nil) a fault-injection registry;
// Publish fires FaultBrokerDrop on it once per queue delivery.
func (b *Broker) SetFaults(r *faultinject.Registry) {
	b.mu.Lock()
	b.faults = r
	b.mu.Unlock()
}

// DeclareQueue creates (or returns) the named durable queue. maxLen <= 0
// means unbounded; otherwise exceeding maxLen pending messages
// decommissions the queue (§4.4).
// Fails with ErrBrokerDown while the broker is crashed; callers must
// retry (or park) rather than proceed with a missing queue.
func (b *Broker) DeclareQueue(name string, maxLen int) (*Queue, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.down {
		return nil, ErrBrokerDown
	}
	if q, ok := b.queues[name]; ok {
		return q, nil
	}
	q := newQueue(name, maxLen, b.log)
	b.queues[name] = q
	b.log.append(logEntry{op: opDeclare, queue: name, n: maxLen})
	return q, nil
}

// ExchangePressure reports the worst overload signal across the queues
// bound to an exchange — the publisher-side view of backpressure: a
// fanout publisher must degrade if ANY of its subscribers is drowning.
// A crashed broker reports PressureNormal; the publish itself will fail
// with ErrBrokerDown and take the journal-and-defer path anyway.
func (b *Broker) ExchangePressure(exchange string) Pressure {
	b.mu.Lock()
	if b.down {
		b.mu.Unlock()
		return PressureNormal
	}
	// Copy-on-write bindings: safe to iterate after the unlock.
	qs := b.bindings[exchange]
	b.mu.Unlock()
	p := PressureNormal
	for _, q := range qs {
		if qp := q.Pressure(); qp > p {
			p = qp
		}
	}
	return p
}

// Queue returns the named queue, if declared.
func (b *Broker) Queue(name string) (*Queue, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	q, ok := b.queues[name]
	return q, ok
}

// DeleteQueue removes a queue entirely (used after decommission, before
// the replacement queue is declared for a re-bootstrapping subscriber).
func (b *Broker) DeleteQueue(name string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	q, ok := b.queues[name]
	if !ok {
		return
	}
	q.close()
	delete(b.queues, name)
	for ex, qs := range b.bindings {
		for i, bound := range qs {
			if bound == q {
				// Copy-on-write: Publish iterates binding slices outside the
				// broker lock, so a bound slice is never mutated in place.
				next := make([]*Queue, 0, len(qs)-1)
				next = append(next, qs[:i]...)
				next = append(next, qs[i+1:]...)
				b.bindings[ex] = next
				break
			}
		}
	}
	b.log.append(logEntry{op: opDeleteQueue, queue: name})
}

// Bind subscribes the named queue to an exchange's messages.
func (b *Broker) Bind(queueName, exchange string) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	q, ok := b.queues[queueName]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownQueue, queueName)
	}
	qs := b.bindings[exchange]
	for _, bound := range qs {
		if bound == q {
			return nil
		}
	}
	// Copy-on-write: build a fresh slice so a Publish holding the old
	// snapshot (it iterates outside the lock) never observes the append.
	next := make([]*Queue, 0, len(qs)+1)
	next = append(next, qs...)
	next = append(next, q)
	b.bindings[exchange] = next
	b.log.append(logEntry{op: opBind, queue: queueName, exchange: exchange})
	return nil
}

// Unbind removes a queue's binding to an exchange.
func (b *Broker) Unbind(queueName, exchange string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	q, ok := b.queues[queueName]
	if !ok {
		return
	}
	qs := b.bindings[exchange]
	for i, bound := range qs {
		if bound == q {
			// Copy-on-write (see Bind).
			next := make([]*Queue, 0, len(qs)-1)
			next = append(next, qs[:i]...)
			next = append(next, qs[i+1:]...)
			b.bindings[exchange] = next
			b.log.append(logEntry{op: opUnbind, queue: queueName, exchange: exchange})
			return
		}
	}
}

// Publish fans the payload out to every queue bound to the exchange.
// Delivery into each queue is independent: one decommissioned queue does
// not affect the others. Fails with ErrBrokerDown while crashed; a nil
// return means the message is on the log (durable) for every queue it
// reached.
func (b *Broker) Publish(exchange string, payload []byte) error {
	b.mu.Lock()
	if b.down {
		b.mu.Unlock()
		return ErrBrokerDown
	}
	// Bindings are copy-on-write: the slice under the map is never
	// mutated in place, so this snapshot is safe to iterate after the
	// unlock without cloning it per publish.
	qs := b.bindings[exchange]
	loss := b.loss
	faults := b.faults
	b.published++
	base := b.seq
	b.seq += uint64(len(qs))
	b.mu.Unlock()
	for i, q := range qs {
		if loss != nil && loss(q.name, exchange, payload) {
			continue
		}
		if faults.Fire(FaultBrokerDrop) != nil {
			continue
		}
		q.push(payload, exchange, base+uint64(i)+1)
	}
	return nil
}

// Published reports the total number of Publish calls (metrics).
func (b *Broker) Published() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.published
}

// Queues lists declared queue names, sorted.
func (b *Broker) Queues() []string {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]string, 0, len(b.queues))
	for n := range b.queues {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Queue is one subscriber app's durable message queue.
type Queue struct {
	name   string
	maxLen int

	mu        sync.Mutex
	cond      *sync.Cond
	log       *queueLog
	pending   itemDeque
	unacked   map[uint64]*item
	nextTag   uint64
	cancelSeq uint64 // bumped by CancelWaiters to wake blocked Gets
	waiters   int    // consumers currently blocked in GetBatch
	dead      bool   // decommissioned
	closed    bool
	downErr   error // set when the owning broker crashed; handle is defunct

	// Dead-letter "set aside" list (§4): a message whose processing has
	// failed maxAttempts times is parked here instead of wedging the
	// consumer pool on endless redelivery. Parked messages stay
	// inspectable and replayable.
	maxAttempts  int
	setAside     []*item
	deadLettered int64 // total messages ever set aside

	// redeliveredTotal counts deliveries of messages already handed out
	// before (crash redeliveries, nack requeues, spill handbacks). Like
	// deadLettered it is cumulative and survives Restart via the log.
	redeliveredTotal int64

	// Overload control. Watermarks, age bound, and the credit window are
	// volatile consumer tuning — deliberately NOT in the queue log; the
	// owning app re-applies them on every (re)attach, the same way a real
	// AMQP consumer re-sends basic.qos after a reconnect.
	hiWater      int           // soft depth high watermark (0 = no depth signal)
	loWater      int           // depth that ends a high episode (hysteresis)
	ageWater     time.Duration // oldest-pending age watermark (0 = no age signal)
	credits      int           // max outstanding unacked deliveries (0 = unbounded)
	pressured    bool          // inside a high-watermark episode
	maxDepthSeen int           // high-water mark of pending+unacked depth
}

func newQueue(name string, maxLen int, log *queueLog) *Queue {
	q := &Queue{
		name:    name,
		maxLen:  maxLen,
		log:     log,
		unacked: make(map[uint64]*item),
	}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// Name returns the queue name.
func (q *Queue) Name() string { return q.name }

// fail marks a handle defunct after a broker crash: every operation on
// it returns err from now on, and blocked consumers wake with it.
func (q *Queue) fail(err error) {
	q.mu.Lock()
	q.downErr = err
	q.cond.Broadcast()
	q.mu.Unlock()
}

func (q *Queue) push(payload []byte, exchange string, id uint64) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.dead || q.closed || q.downErr != nil {
		return
	}
	q.pending.PushBack(&item{id: id, payload: payload, exchange: exchange, enq: time.Now()})
	q.log.append(logEntry{op: opEnqueue, queue: q.name, id: id, payload: payload, exchange: exchange})
	q.notePressureLocked()
	// Unacked deliveries count against the bound: a prefetching consumer
	// that cannot finish its batch is as far behind as one that never
	// dequeued, and must not mask the overflow.
	if q.maxLen > 0 && q.pending.Len()+len(q.unacked) > q.maxLen {
		// Decommission: the subscriber has been away too long; kill the
		// queue rather than grow without bound (§4.4).
		q.pending.Clear()
		for tag := range q.unacked {
			delete(q.unacked, tag)
		}
		q.setAside = nil
		q.dead = true
		q.log.append(logEntry{op: opDecommission, queue: q.name})
	}
	q.cond.Broadcast()
}

// Get blocks until a message is available, the queue is decommissioned,
// the queue is closed, or CancelWaiters interrupts the wait
// (ErrCanceled — used for graceful worker shutdown; the queue itself
// stays usable).
func (q *Queue) Get() (Delivery, error) {
	ds, err := q.GetBatch(1)
	if err != nil {
		return Delivery{}, err
	}
	return ds[0], nil
}

// GetBatch blocks like Get until at least one message is available, then
// drains up to max pending messages under one lock acquisition. This is
// the subscriber-side prefetch: a worker pays the queue synchronization
// cost once per batch instead of once per message. The batch is capped
// at a fair share of the pending messages relative to the consumers
// currently blocked waiting, so one worker cannot starve an idle pool
// by grabbing the whole queue. Every returned delivery must be Acked or
// Nacked individually.
func (q *Queue) GetBatch(max int) ([]Delivery, error) {
	if max < 1 {
		max = 1
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	seq := q.cancelSeq
	for {
		if q.downErr != nil {
			return nil, q.downErr
		}
		if q.dead {
			return nil, ErrDecommissioned
		}
		if q.closed {
			return nil, ErrClosed
		}
		if q.pending.Len() > 0 && q.creditLocked() != 0 {
			// Fair share: leave enough behind for every consumer still
			// blocked in the wait below (ceil division keeps n >= 1).
			n := (q.pending.Len() + q.waiters) / (q.waiters + 1)
			if n > max {
				n = max
			}
			// Credit window: the batch may not push outstanding unacked
			// deliveries past the granted window; acks replenish it.
			if c := q.creditLocked(); c > 0 && n > c {
				n = c
			}
			out := make([]Delivery, 0, n)
			for i := 0; i < n; i++ {
				out = append(out, q.takeLocked())
			}
			return out, nil
		}
		if q.cancelSeq != seq {
			return nil, ErrCanceled
		}
		q.waiters++
		q.cond.Wait()
		q.waiters--
	}
}

// Starving reports whether consumers are blocked on an empty queue. A
// prefetching worker checks this between messages and hands the rest of
// its batch back when idle workers could be processing it.
func (q *Queue) Starving() bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.waiters > 0 && q.pending.Len() == 0
}

// CancelWaiters wakes every consumer currently blocked in Get with
// ErrCanceled. Pending messages and future Gets are unaffected.
func (q *Queue) CancelWaiters() {
	q.mu.Lock()
	q.cancelSeq++
	q.cond.Broadcast()
	q.mu.Unlock()
}

// TryGet returns a message if one is immediately available.
func (q *Queue) TryGet() (Delivery, bool, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.downErr != nil {
		return Delivery{}, false, q.downErr
	}
	if q.dead {
		return Delivery{}, false, ErrDecommissioned
	}
	if q.closed {
		return Delivery{}, false, ErrClosed
	}
	if q.pending.Len() == 0 || q.creditLocked() == 0 {
		return Delivery{}, false, nil
	}
	return q.takeLocked(), true, nil
}

// creditLocked reports how many more deliveries the credit window
// admits right now: -1 when the window is unbounded, otherwise the
// remaining credit (0 = exhausted, consumers must wait for acks).
func (q *Queue) creditLocked() int {
	if q.credits <= 0 {
		return -1
	}
	if c := q.credits - len(q.unacked); c > 0 {
		return c
	}
	return 0
}

// notePressureLocked re-evaluates the depth watermark state machine and
// the depth high-water mark. The episode flag is sticky: it sets at
// hiWater and clears only once depth drains to loWater, so publishers
// are not flapped on/off at the boundary.
func (q *Queue) notePressureLocked() {
	d := q.pending.Len() + len(q.unacked)
	if d > q.maxDepthSeen {
		q.maxDepthSeen = d
	}
	if q.hiWater <= 0 {
		q.pressured = false
		return
	}
	if q.pressured {
		if d <= q.loWater {
			q.pressured = false
		}
	} else if d >= q.hiWater {
		q.pressured = true
	}
}

// SetWatermarks installs the soft depth watermarks: at high the queue
// starts signalling PressureHigh; the signal clears once depth drains
// to low. high <= 0 disables the depth signal; low outside (0, high)
// defaults to high/2.
func (q *Queue) SetWatermarks(high, low int) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if low <= 0 || low > high {
		low = high / 2
	}
	q.hiWater, q.loWater = high, low
	q.notePressureLocked()
}

// SetAgeWatermark installs the age watermark: while the oldest pending
// message is older than d, the queue signals PressureHigh regardless of
// depth. 0 disables the age signal.
func (q *Queue) SetAgeWatermark(d time.Duration) {
	q.mu.Lock()
	q.ageWater = d
	q.mu.Unlock()
}

// SetCredits grants the consumer pool a credit window of n outstanding
// unacked deliveries (basic.qos in AMQP terms): GetBatch/TryGet stop
// handing out messages while the window is exhausted and resume as acks
// return credit. n <= 0 removes the window.
func (q *Queue) SetCredits(n int) {
	q.mu.Lock()
	q.credits = n
	q.cond.Broadcast()
	q.mu.Unlock()
}

// Pressure reports the queue's current overload signal.
func (q *Queue) Pressure() Pressure {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.notePressureLocked()
	if q.pressured {
		return PressureHigh
	}
	if q.ageWater > 0 && q.pending.Len() > 0 {
		if it := q.pending.At(0); time.Since(it.enq) >= q.ageWater {
			return PressureHigh
		}
	}
	return PressureNormal
}

// Depth reports pending plus unacked messages — the figure the
// watermarks and the decommission bound are measured against.
func (q *Queue) Depth() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.pending.Len() + len(q.unacked)
}

// MaxDepthSeen reports the deepest the queue has ever been
// (pending + unacked), the bounded-memory witness for overload runs.
func (q *Queue) MaxDepthSeen() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.maxDepthSeen
}

// OldestAge reports how long the head pending message has been waiting
// (0 when the queue is empty).
func (q *Queue) OldestAge() time.Duration {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.pending.Len() == 0 {
		return 0
	}
	return time.Since(q.pending.At(0).enq)
}

func (q *Queue) takeLocked() Delivery {
	it := q.pending.PopFront()
	q.nextTag++
	tag := q.nextTag
	q.unacked[tag] = it
	if !it.delivered {
		// First hand-off: from here until the ack lands, a crash makes
		// this message redeliverable.
		it.delivered = true
		q.log.append(logEntry{op: opDeliver, queue: q.name, id: it.id})
	} else {
		q.redeliveredTotal++
		q.log.append(logEntry{op: opRedeliver, queue: q.name, id: it.id})
	}
	return Delivery{Payload: it.payload, Tag: tag, Redelivered: it.redelivered, Exchange: it.exchange, Attempts: it.fails}
}

// Ack confirms processing of a delivery.
func (q *Queue) Ack(tag uint64) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.downErr != nil {
		return q.downErr
	}
	it, ok := q.unacked[tag]
	if !ok {
		if q.dead {
			return ErrDecommissioned
		}
		return ErrBadTag
	}
	delete(q.unacked, tag)
	q.log.append(logEntry{op: opAck, queue: q.name, id: it.id})
	q.notePressureLocked()
	// The ack returns credit to the window; wake consumers blocked on an
	// exhausted window.
	if q.credits > 0 {
		q.cond.Broadcast()
	}
	return nil
}

// AckMulti acknowledges a batch of deliveries in one broker call: one
// lock acquisition, a log append per tag, one pressure note, and one
// credit broadcast — the coalesced-ack half of the subscriber's
// group-commit flush. Every valid tag in the batch is acked even when
// others are stale; the error (ErrBadTag, or ErrDecommissioned on a
// dead queue) reports only that some tags were unknown, which a
// crash/redelivery race makes benign for the caller.
func (q *Queue) AckMulti(tags []uint64) error {
	if len(tags) == 0 {
		return nil
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.downErr != nil {
		return q.downErr
	}
	missing := false
	for _, tag := range tags {
		it, ok := q.unacked[tag]
		if !ok {
			missing = true
			continue
		}
		delete(q.unacked, tag)
		q.log.append(logEntry{op: opAck, queue: q.name, id: it.id})
	}
	q.notePressureLocked()
	if q.credits > 0 {
		q.cond.Broadcast()
	}
	if missing {
		if q.dead {
			return ErrDecommissioned
		}
		return ErrBadTag
	}
	return nil
}

// Nack returns a delivery to the queue. With requeue, the message goes
// to the front (preserving order as far as possible) marked redelivered;
// without, it is dropped.
func (q *Queue) Nack(tag uint64, requeue bool) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.downErr != nil {
		return q.downErr
	}
	it, ok := q.unacked[tag]
	if !ok {
		if q.dead {
			return ErrDecommissioned
		}
		return ErrBadTag
	}
	delete(q.unacked, tag)
	if requeue && !q.dead && !q.closed {
		it.redelivered = true
		q.pending.PushFront(it)
		q.cond.Broadcast()
	} else {
		// Dropped without requeue: gone from the durable state too.
		q.log.append(logEntry{op: opAck, queue: q.name, id: it.id})
		q.notePressureLocked()
		if q.credits > 0 {
			q.cond.Broadcast()
		}
	}
	return nil
}

// SetMaxAttempts bounds failed processing attempts per message: after n
// NackError calls a message is set aside (dead-lettered) instead of
// requeued. n <= 0 (the default) disables the bound — failure nacks
// requeue forever, the pre-dead-letter behaviour.
func (q *Queue) SetMaxAttempts(n int) {
	q.mu.Lock()
	q.maxAttempts = n
	q.log.append(logEntry{op: opMaxAttempts, queue: q.name, n: n})
	q.mu.Unlock()
}

// NackError returns a delivery to the queue after a FAILED processing
// attempt. Unlike Nack (which hands back unprocessed prefetch without
// penalty), it increments the message's failure count; once the count
// reaches the queue's max attempts the message is set aside on the
// dead-letter list instead of requeued, so a poison message cannot
// wedge the consumer pool. Reports whether the message was set aside.
func (q *Queue) NackError(tag uint64) (deadLettered bool, err error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.downErr != nil {
		return false, q.downErr
	}
	it, ok := q.unacked[tag]
	if !ok {
		if q.dead {
			return false, ErrDecommissioned
		}
		return false, ErrBadTag
	}
	delete(q.unacked, tag)
	if q.dead || q.closed {
		return false, nil
	}
	it.fails++
	it.redelivered = true
	q.log.append(logEntry{op: opFail, queue: q.name, id: it.id})
	if q.maxAttempts > 0 && it.fails >= q.maxAttempts {
		q.setAside = append(q.setAside, it)
		q.deadLettered++
		q.log.append(logEntry{op: opDeadLetter, queue: q.name, id: it.id})
		// Quarantine shrinks the live depth and returns credit.
		q.notePressureLocked()
		q.cond.Broadcast()
		return true, nil
	}
	q.pending.PushFront(it)
	q.cond.Broadcast()
	return false, nil
}

// DeadLetters returns copies of the set-aside message payloads in the
// order they were parked (inspection; the originals stay parked).
func (q *Queue) DeadLetters() []Delivery {
	q.mu.Lock()
	defer q.mu.Unlock()
	out := make([]Delivery, 0, len(q.setAside))
	for _, it := range q.setAside {
		payload := make([]byte, len(it.payload))
		copy(payload, it.payload)
		out = append(out, Delivery{Payload: payload, Redelivered: true, Exchange: it.exchange, Attempts: it.fails})
	}
	return out
}

// ReplayDeadLetters moves every set-aside message back to the front of
// the queue (original park order preserved) with its failure count
// reset, and reports how many were replayed. Used after the operator
// clears the underlying fault.
func (q *Queue) ReplayDeadLetters() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	n := len(q.setAside)
	if n == 0 || q.dead || q.closed {
		q.setAside = nil
		return 0
	}
	// Front-load the parked items in their original order: pushing each
	// to the head back-to-front lands setAside[0] first in line.
	for i := n - 1; i >= 0; i-- {
		it := q.setAside[i]
		it.fails = 0
		it.enq = time.Now()
		q.pending.PushFront(it)
	}
	q.setAside = nil
	q.log.append(logEntry{op: opReplayDL, queue: q.name})
	q.notePressureLocked()
	q.cond.Broadcast()
	return n
}

// DeadLetterCount reports messages currently set aside.
func (q *Queue) DeadLetterCount() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.setAside)
}

// DeadLettered reports the total messages ever set aside.
func (q *Queue) DeadLettered() int64 {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.deadLettered
}

// Redelivered reports the total repeat deliveries ever handed out.
func (q *Queue) Redelivered() int64 {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.redeliveredTotal
}

// Len reports pending (undelivered) messages.
func (q *Queue) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.pending.Len()
}

// Unacked reports delivered-but-unacked messages.
func (q *Queue) Unacked() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.unacked)
}

// Dead reports whether the queue was decommissioned.
func (q *Queue) Dead() bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.dead
}

// close wakes all consumers with ErrClosed.
func (q *Queue) close() {
	q.mu.Lock()
	q.closed = true
	q.cond.Broadcast()
	q.mu.Unlock()
}
