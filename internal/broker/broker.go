// Package broker implements the reliable publish/subscribe message
// broker Synapse rides on (RabbitMQ in the paper's deployment, §4).
//
// Topology follows the paper: each publisher app owns a fanout exchange;
// each subscriber app owns one durable queue bound to the exchanges of
// every publisher it subscribes to. Queue messages are consumed by many
// workers in parallel, acked after persistence, and redelivered on nack.
//
// Two failure behaviours from the paper are modelled directly:
//
//   - Queue-length decommission (§4.4): if a subscriber stays down and
//     its queue exceeds its limit, the broker kills the queue; the
//     subscriber must partial-bootstrap when it returns.
//   - Message loss (§6.5): even reliable brokers lose messages in rare
//     operational events (the RabbitMQ upgrade incident). An injectable
//     loss function drops messages between exchange and queue so the
//     recovery paths can be exercised.
package broker

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"synapse/internal/faultinject"
)

// FaultBrokerDrop is the named fault site consulted once per (queue,
// message) delivery: an armed fault that returns an error drops the
// message between the exchange and that queue, modelling the rare
// message-loss events of §6.5 deterministically (SetLoss remains for
// probabilistic loss).
const FaultBrokerDrop = "broker/drop"

// Errors returned by queue operations.
var (
	ErrClosed         = errors.New("broker: queue closed")
	ErrDecommissioned = errors.New("broker: queue decommissioned")
	ErrUnknownQueue   = errors.New("broker: unknown queue")
	ErrBadTag         = errors.New("broker: unknown delivery tag")
	ErrCanceled       = errors.New("broker: consume canceled")
	// ErrBrokerDown is returned by every operation — publishes, consumes,
	// acks — between Crash() and Restart(), and forever by queue handles
	// obtained before a crash (a reconnecting consumer must re-fetch its
	// queue from the restarted broker).
	ErrBrokerDown = errors.New("broker: broker is down")
)

// Delivery is one message handed to a consumer. It must be Acked or
// Nacked on its queue.
type Delivery struct {
	Payload     []byte
	Tag         uint64
	Redelivered bool
	Exchange    string
	// Attempts counts prior FAILED processing attempts (NackError calls)
	// for this message — 0 on first delivery. Spill handbacks via Nack do
	// not count. Consumers use it to scale their retry backoff.
	Attempts int
}

type item struct {
	id          uint64 // log identity, unique per (queue, enqueue)
	payload     []byte
	exchange    string
	redelivered bool
	delivered   bool // handed to a consumer at least once
	fails       int
}

// LossFunc decides whether to drop a message on its way into a queue.
type LossFunc func(queue, exchange string, payload []byte) bool

// Broker routes published messages from exchanges to bound queues.
type Broker struct {
	mu        sync.Mutex
	bindings  map[string][]*Queue // exchange -> queues
	queues    map[string]*Queue
	loss      LossFunc
	faults    *faultinject.Registry
	published int64
	down      bool
	seq       uint64 // message-id source for the queue log
	log       *queueLog
}

// New returns an empty broker.
func New() *Broker {
	return &Broker{
		bindings: make(map[string][]*Queue),
		queues:   make(map[string]*Queue),
		log:      newQueueLog(),
	}
}

// Crash models broker process death: all in-memory routing and queue
// state is wiped, every operation fails with ErrBrokerDown, and every
// outstanding queue handle — including consumers blocked in GetBatch —
// is woken with ErrBrokerDown. Only the queue log (the modelled disk)
// survives; Restart replays it.
func (b *Broker) Crash() {
	b.mu.Lock()
	if b.down {
		b.mu.Unlock()
		return
	}
	b.down = true
	old := make([]*Queue, 0, len(b.queues))
	for _, q := range b.queues {
		old = append(old, q)
	}
	b.queues = make(map[string]*Queue)
	b.bindings = make(map[string][]*Queue)
	b.mu.Unlock()
	for _, q := range old {
		q.fail(ErrBrokerDown)
	}
}

// Restart brings a crashed broker back by replaying the queue log:
// queues and bindings are rebuilt, pending messages reappear in
// publish order, delivered-but-unacked messages return to the front of
// their queues flagged Redelivered (their ack was lost with the
// crash), dead-letter parks and failure counts survive, and acked
// messages stay gone. Pre-crash queue handles and delivery tags remain
// invalid; consumers must re-fetch their queue.
func (b *Broker) Restart() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.down {
		return
	}
	st := b.log.replay()
	b.queues = make(map[string]*Queue, len(st.queues))
	b.bindings = make(map[string][]*Queue)
	for name, rq := range st.queues {
		q := newQueue(name, rq.maxLen, b.log)
		q.maxAttempts = rq.maxAttempts
		q.dead = rq.dead
		q.deadLettered = rq.deadCount
		var redo, fresh []*item
		for _, id := range rq.order {
			m := rq.msgs[id]
			it := &item{
				id: m.id, payload: m.payload, exchange: m.exchange,
				fails: m.fails, delivered: m.delivered, redelivered: m.delivered,
			}
			switch {
			case m.deadLettered:
				q.setAside = append(q.setAside, it)
			case m.delivered:
				// Unacked in-flight at crash time: redeliver first,
				// preserving their publish order among themselves.
				redo = append(redo, it)
			default:
				fresh = append(fresh, it)
			}
		}
		for _, it := range redo {
			q.pending.PushBack(it)
		}
		for _, it := range fresh {
			q.pending.PushBack(it)
		}
		b.queues[name] = q
	}
	for ex, qnames := range st.bindings {
		for _, qn := range qnames {
			if q, ok := b.queues[qn]; ok {
				b.bindings[ex] = append(b.bindings[ex], q)
			}
		}
	}
	b.down = false
}

// Down reports whether the broker is crashed.
func (b *Broker) Down() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.down
}

// LogSize reports the queue-log entry count (tests, compaction).
func (b *Broker) LogSize() int { return b.log.size() }

// SetLoss installs (or clears, with nil) the loss-injection function.
func (b *Broker) SetLoss(f LossFunc) {
	b.mu.Lock()
	b.loss = f
	b.mu.Unlock()
}

// SetFaults installs (or clears, with nil) a fault-injection registry;
// Publish fires FaultBrokerDrop on it once per queue delivery.
func (b *Broker) SetFaults(r *faultinject.Registry) {
	b.mu.Lock()
	b.faults = r
	b.mu.Unlock()
}

// DeclareQueue creates (or returns) the named durable queue. maxLen <= 0
// means unbounded; otherwise exceeding maxLen pending messages
// decommissions the queue (§4.4).
// Returns nil while the broker is down.
func (b *Broker) DeclareQueue(name string, maxLen int) *Queue {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.down {
		return nil
	}
	if q, ok := b.queues[name]; ok {
		return q
	}
	q := newQueue(name, maxLen, b.log)
	b.queues[name] = q
	b.log.append(logEntry{op: opDeclare, queue: name, n: maxLen})
	return q
}

// Queue returns the named queue, if declared.
func (b *Broker) Queue(name string) (*Queue, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	q, ok := b.queues[name]
	return q, ok
}

// DeleteQueue removes a queue entirely (used after decommission, before
// the replacement queue is declared for a re-bootstrapping subscriber).
func (b *Broker) DeleteQueue(name string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	q, ok := b.queues[name]
	if !ok {
		return
	}
	q.close()
	delete(b.queues, name)
	for ex, qs := range b.bindings {
		for i, bound := range qs {
			if bound == q {
				// Copy-on-write: Publish iterates binding slices outside the
				// broker lock, so a bound slice is never mutated in place.
				next := make([]*Queue, 0, len(qs)-1)
				next = append(next, qs[:i]...)
				next = append(next, qs[i+1:]...)
				b.bindings[ex] = next
				break
			}
		}
	}
	b.log.append(logEntry{op: opDeleteQueue, queue: name})
}

// Bind subscribes the named queue to an exchange's messages.
func (b *Broker) Bind(queueName, exchange string) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	q, ok := b.queues[queueName]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownQueue, queueName)
	}
	qs := b.bindings[exchange]
	for _, bound := range qs {
		if bound == q {
			return nil
		}
	}
	// Copy-on-write: build a fresh slice so a Publish holding the old
	// snapshot (it iterates outside the lock) never observes the append.
	next := make([]*Queue, 0, len(qs)+1)
	next = append(next, qs...)
	next = append(next, q)
	b.bindings[exchange] = next
	b.log.append(logEntry{op: opBind, queue: queueName, exchange: exchange})
	return nil
}

// Unbind removes a queue's binding to an exchange.
func (b *Broker) Unbind(queueName, exchange string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	q, ok := b.queues[queueName]
	if !ok {
		return
	}
	qs := b.bindings[exchange]
	for i, bound := range qs {
		if bound == q {
			// Copy-on-write (see Bind).
			next := make([]*Queue, 0, len(qs)-1)
			next = append(next, qs[:i]...)
			next = append(next, qs[i+1:]...)
			b.bindings[exchange] = next
			b.log.append(logEntry{op: opUnbind, queue: queueName, exchange: exchange})
			return
		}
	}
}

// Publish fans the payload out to every queue bound to the exchange.
// Delivery into each queue is independent: one decommissioned queue does
// not affect the others. Fails with ErrBrokerDown while crashed; a nil
// return means the message is on the log (durable) for every queue it
// reached.
func (b *Broker) Publish(exchange string, payload []byte) error {
	b.mu.Lock()
	if b.down {
		b.mu.Unlock()
		return ErrBrokerDown
	}
	// Bindings are copy-on-write: the slice under the map is never
	// mutated in place, so this snapshot is safe to iterate after the
	// unlock without cloning it per publish.
	qs := b.bindings[exchange]
	loss := b.loss
	faults := b.faults
	b.published++
	base := b.seq
	b.seq += uint64(len(qs))
	b.mu.Unlock()
	for i, q := range qs {
		if loss != nil && loss(q.name, exchange, payload) {
			continue
		}
		if faults.Fire(FaultBrokerDrop) != nil {
			continue
		}
		q.push(payload, exchange, base+uint64(i)+1)
	}
	return nil
}

// Published reports the total number of Publish calls (metrics).
func (b *Broker) Published() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.published
}

// Queues lists declared queue names, sorted.
func (b *Broker) Queues() []string {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]string, 0, len(b.queues))
	for n := range b.queues {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Queue is one subscriber app's durable message queue.
type Queue struct {
	name   string
	maxLen int

	mu        sync.Mutex
	cond      *sync.Cond
	log       *queueLog
	pending   itemDeque
	unacked   map[uint64]*item
	nextTag   uint64
	cancelSeq uint64 // bumped by CancelWaiters to wake blocked Gets
	waiters   int    // consumers currently blocked in GetBatch
	dead      bool   // decommissioned
	closed    bool
	downErr   error // set when the owning broker crashed; handle is defunct

	// Dead-letter "set aside" list (§4): a message whose processing has
	// failed maxAttempts times is parked here instead of wedging the
	// consumer pool on endless redelivery. Parked messages stay
	// inspectable and replayable.
	maxAttempts  int
	setAside     []*item
	deadLettered int64 // total messages ever set aside
}

func newQueue(name string, maxLen int, log *queueLog) *Queue {
	q := &Queue{
		name:    name,
		maxLen:  maxLen,
		log:     log,
		unacked: make(map[uint64]*item),
	}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// Name returns the queue name.
func (q *Queue) Name() string { return q.name }

// fail marks a handle defunct after a broker crash: every operation on
// it returns err from now on, and blocked consumers wake with it.
func (q *Queue) fail(err error) {
	q.mu.Lock()
	q.downErr = err
	q.cond.Broadcast()
	q.mu.Unlock()
}

func (q *Queue) push(payload []byte, exchange string, id uint64) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.dead || q.closed || q.downErr != nil {
		return
	}
	q.pending.PushBack(&item{id: id, payload: payload, exchange: exchange})
	q.log.append(logEntry{op: opEnqueue, queue: q.name, id: id, payload: payload, exchange: exchange})
	// Unacked deliveries count against the bound: a prefetching consumer
	// that cannot finish its batch is as far behind as one that never
	// dequeued, and must not mask the overflow.
	if q.maxLen > 0 && q.pending.Len()+len(q.unacked) > q.maxLen {
		// Decommission: the subscriber has been away too long; kill the
		// queue rather than grow without bound (§4.4).
		q.pending.Clear()
		for tag := range q.unacked {
			delete(q.unacked, tag)
		}
		q.setAside = nil
		q.dead = true
		q.log.append(logEntry{op: opDecommission, queue: q.name})
	}
	q.cond.Broadcast()
}

// Get blocks until a message is available, the queue is decommissioned,
// the queue is closed, or CancelWaiters interrupts the wait
// (ErrCanceled — used for graceful worker shutdown; the queue itself
// stays usable).
func (q *Queue) Get() (Delivery, error) {
	ds, err := q.GetBatch(1)
	if err != nil {
		return Delivery{}, err
	}
	return ds[0], nil
}

// GetBatch blocks like Get until at least one message is available, then
// drains up to max pending messages under one lock acquisition. This is
// the subscriber-side prefetch: a worker pays the queue synchronization
// cost once per batch instead of once per message. The batch is capped
// at a fair share of the pending messages relative to the consumers
// currently blocked waiting, so one worker cannot starve an idle pool
// by grabbing the whole queue. Every returned delivery must be Acked or
// Nacked individually.
func (q *Queue) GetBatch(max int) ([]Delivery, error) {
	if max < 1 {
		max = 1
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	seq := q.cancelSeq
	for {
		if q.downErr != nil {
			return nil, q.downErr
		}
		if q.dead {
			return nil, ErrDecommissioned
		}
		if q.closed {
			return nil, ErrClosed
		}
		if q.pending.Len() > 0 {
			// Fair share: leave enough behind for every consumer still
			// blocked in the wait below (ceil division keeps n >= 1).
			n := (q.pending.Len() + q.waiters) / (q.waiters + 1)
			if n > max {
				n = max
			}
			out := make([]Delivery, 0, n)
			for i := 0; i < n; i++ {
				out = append(out, q.takeLocked())
			}
			return out, nil
		}
		if q.cancelSeq != seq {
			return nil, ErrCanceled
		}
		q.waiters++
		q.cond.Wait()
		q.waiters--
	}
}

// Starving reports whether consumers are blocked on an empty queue. A
// prefetching worker checks this between messages and hands the rest of
// its batch back when idle workers could be processing it.
func (q *Queue) Starving() bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.waiters > 0 && q.pending.Len() == 0
}

// CancelWaiters wakes every consumer currently blocked in Get with
// ErrCanceled. Pending messages and future Gets are unaffected.
func (q *Queue) CancelWaiters() {
	q.mu.Lock()
	q.cancelSeq++
	q.cond.Broadcast()
	q.mu.Unlock()
}

// TryGet returns a message if one is immediately available.
func (q *Queue) TryGet() (Delivery, bool, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.downErr != nil {
		return Delivery{}, false, q.downErr
	}
	if q.dead {
		return Delivery{}, false, ErrDecommissioned
	}
	if q.closed {
		return Delivery{}, false, ErrClosed
	}
	if q.pending.Len() == 0 {
		return Delivery{}, false, nil
	}
	return q.takeLocked(), true, nil
}

func (q *Queue) takeLocked() Delivery {
	it := q.pending.PopFront()
	q.nextTag++
	tag := q.nextTag
	q.unacked[tag] = it
	if !it.delivered {
		// First hand-off: from here until the ack lands, a crash makes
		// this message redeliverable.
		it.delivered = true
		q.log.append(logEntry{op: opDeliver, queue: q.name, id: it.id})
	}
	return Delivery{Payload: it.payload, Tag: tag, Redelivered: it.redelivered, Exchange: it.exchange, Attempts: it.fails}
}

// Ack confirms processing of a delivery.
func (q *Queue) Ack(tag uint64) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.downErr != nil {
		return q.downErr
	}
	it, ok := q.unacked[tag]
	if !ok {
		if q.dead {
			return ErrDecommissioned
		}
		return ErrBadTag
	}
	delete(q.unacked, tag)
	q.log.append(logEntry{op: opAck, queue: q.name, id: it.id})
	return nil
}

// Nack returns a delivery to the queue. With requeue, the message goes
// to the front (preserving order as far as possible) marked redelivered;
// without, it is dropped.
func (q *Queue) Nack(tag uint64, requeue bool) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.downErr != nil {
		return q.downErr
	}
	it, ok := q.unacked[tag]
	if !ok {
		if q.dead {
			return ErrDecommissioned
		}
		return ErrBadTag
	}
	delete(q.unacked, tag)
	if requeue && !q.dead && !q.closed {
		it.redelivered = true
		q.pending.PushFront(it)
		q.cond.Broadcast()
	} else {
		// Dropped without requeue: gone from the durable state too.
		q.log.append(logEntry{op: opAck, queue: q.name, id: it.id})
	}
	return nil
}

// SetMaxAttempts bounds failed processing attempts per message: after n
// NackError calls a message is set aside (dead-lettered) instead of
// requeued. n <= 0 (the default) disables the bound — failure nacks
// requeue forever, the pre-dead-letter behaviour.
func (q *Queue) SetMaxAttempts(n int) {
	q.mu.Lock()
	q.maxAttempts = n
	q.log.append(logEntry{op: opMaxAttempts, queue: q.name, n: n})
	q.mu.Unlock()
}

// NackError returns a delivery to the queue after a FAILED processing
// attempt. Unlike Nack (which hands back unprocessed prefetch without
// penalty), it increments the message's failure count; once the count
// reaches the queue's max attempts the message is set aside on the
// dead-letter list instead of requeued, so a poison message cannot
// wedge the consumer pool. Reports whether the message was set aside.
func (q *Queue) NackError(tag uint64) (deadLettered bool, err error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.downErr != nil {
		return false, q.downErr
	}
	it, ok := q.unacked[tag]
	if !ok {
		if q.dead {
			return false, ErrDecommissioned
		}
		return false, ErrBadTag
	}
	delete(q.unacked, tag)
	if q.dead || q.closed {
		return false, nil
	}
	it.fails++
	it.redelivered = true
	q.log.append(logEntry{op: opFail, queue: q.name, id: it.id})
	if q.maxAttempts > 0 && it.fails >= q.maxAttempts {
		q.setAside = append(q.setAside, it)
		q.deadLettered++
		q.log.append(logEntry{op: opDeadLetter, queue: q.name, id: it.id})
		return true, nil
	}
	q.pending.PushFront(it)
	q.cond.Broadcast()
	return false, nil
}

// DeadLetters returns copies of the set-aside message payloads in the
// order they were parked (inspection; the originals stay parked).
func (q *Queue) DeadLetters() []Delivery {
	q.mu.Lock()
	defer q.mu.Unlock()
	out := make([]Delivery, 0, len(q.setAside))
	for _, it := range q.setAside {
		payload := make([]byte, len(it.payload))
		copy(payload, it.payload)
		out = append(out, Delivery{Payload: payload, Redelivered: true, Exchange: it.exchange, Attempts: it.fails})
	}
	return out
}

// ReplayDeadLetters moves every set-aside message back to the front of
// the queue (original park order preserved) with its failure count
// reset, and reports how many were replayed. Used after the operator
// clears the underlying fault.
func (q *Queue) ReplayDeadLetters() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	n := len(q.setAside)
	if n == 0 || q.dead || q.closed {
		q.setAside = nil
		return 0
	}
	// Front-load the parked items in their original order: pushing each
	// to the head back-to-front lands setAside[0] first in line.
	for i := n - 1; i >= 0; i-- {
		it := q.setAside[i]
		it.fails = 0
		q.pending.PushFront(it)
	}
	q.setAside = nil
	q.log.append(logEntry{op: opReplayDL, queue: q.name})
	q.cond.Broadcast()
	return n
}

// DeadLetterCount reports messages currently set aside.
func (q *Queue) DeadLetterCount() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.setAside)
}

// DeadLettered reports the total messages ever set aside.
func (q *Queue) DeadLettered() int64 {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.deadLettered
}

// Len reports pending (undelivered) messages.
func (q *Queue) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.pending.Len()
}

// Unacked reports delivered-but-unacked messages.
func (q *Queue) Unacked() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.unacked)
}

// Dead reports whether the queue was decommissioned.
func (q *Queue) Dead() bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.dead
}

// close wakes all consumers with ErrClosed.
func (q *Queue) close() {
	q.mu.Lock()
	q.closed = true
	q.cond.Broadcast()
	q.mu.Unlock()
}
