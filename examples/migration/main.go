// Migration: the paper's production notes (§6.5, "Supports Heavy
// Refactoring") — Synapse as a zero-downtime migration tool — plus the
// live schema migration rules of §4.3.
//
// Part 1, live DB migration: Crowdtap migrated their main app from
// MongoDB to TokuMX by standing up the new app as a subscriber to ALL
// of the old app's data, bootstrapping it, letting it track live
// writes, and then switching the load balancer.
//
// Part 2, live schema migration: a publisher removes a stored column
// but keeps publishing the attribute through a virtual alias, so
// subscribers never observe the internal change; then it publishes a
// brand-new attribute and subscribers pick it up with a partial
// bootstrap.
//
//	go run ./examples/migration
package main

import (
	"fmt"
	"log"
	"time"

	"synapse"
)

func main() {
	fabric := synapse.NewFabric()

	// ------------------------------------------------------------------
	// Part 1: live DB migration (MongoDB -> TokuMX clone-and-switch).
	// ------------------------------------------------------------------
	oldMapper := synapse.NewDocumentMapper(synapse.MongoDB)
	oldApp, err := synapse.NewApp(fabric, "main-v1", oldMapper, synapse.Config{Mode: synapse.Causal})
	check(err)
	user := synapse.NewModel("User",
		synapse.F("name", synapse.String),
		synapse.F("email", synapse.String),
	)
	check(oldApp.Publish(user, synapse.PubSpec{Attrs: []string{"name", "email"}}))

	// Production has been running for a while.
	ctl := oldApp.NewController(nil)
	for i := 0; i < 100; i++ {
		rec := synapse.NewRecord("User", fmt.Sprintf("u%03d", i))
		rec.Set("name", fmt.Sprintf("member %d", i))
		rec.Set("email", fmt.Sprintf("m%d@example.com", i))
		_, err := ctl.Create(rec)
		check(err)
	}
	fmt.Printf("[main-v1]  %d users on MongoDB\n", oldMapper.Len("User"))

	// The replacement app subscribes to ALL of the old app's data.
	newMapper := synapse.NewDocumentMapper(synapse.TokuMX)
	newApp, err := synapse.NewApp(fabric, "main-v2", newMapper, synapse.Config{})
	check(err)
	v2User := synapse.NewModel("User",
		synapse.F("name", synapse.String),
		synapse.F("email", synapse.String),
	)
	check(newApp.Subscribe(v2User, synapse.SubSpec{From: "main-v1", Attrs: []string{"name", "email"}}))
	check(newApp.Bootstrap("main-v1"))
	newApp.StartWorkers(2)
	fmt.Printf("[main-v2]  bootstrapped %d users onto TokuMX\n", newMapper.Len("User"))

	// Both versions run simultaneously; live writes keep flowing to v2
	// while QA pokes at it (the paper's no-downtime procedure).
	rec := synapse.NewRecord("User", "u100")
	rec.Set("name", "late signup")
	rec.Set("email", "late@example.com")
	_, err = ctl.Create(rec)
	check(err)
	waitUntil(func() bool { return newMapper.Len("User") == 101 })
	fmt.Println("[main-v2]  live writes tracked; load balancer can switch with no downtime")

	// ------------------------------------------------------------------
	// Part 2: live schema migration (§4.3).
	// ------------------------------------------------------------------
	// A subscriber consumes the published "email" attribute.
	audit := synapse.NewDocumentMapper(synapse.MongoDB)
	auditApp, err := synapse.NewApp(fabric, "audit", audit, synapse.Config{})
	check(err)
	auditUser := synapse.NewModel("User", synapse.F("email", synapse.String))
	check(auditApp.Subscribe(auditUser, synapse.SubSpec{From: "main-v1", Attrs: []string{"email"}}))
	check(auditApp.Bootstrap("main-v1"))
	auditApp.StartWorkers(1)

	// Rule 1: before removing a published attribute from the DB schema,
	// add a virtual attribute of the same name. The publisher refactors
	// its storage to keep emails in a separate contact document, but
	// subscribers keep receiving "email" unchanged.
	user.RemoveField("email")
	user.DefineVirtual(&synapse.VirtualAttr{
		Name: "email",
		Get: func(r *synapse.Record) any {
			// Internally reconstructed (here: derived from the id).
			return r.ID + "@contacts.example.com"
		},
	})
	fmt.Println("[main-v1]  dropped the email column; virtual alias keeps the contract")

	patch := synapse.NewRecord("User", "u001")
	patch.Set("name", "renamed member")
	_, err = ctl.Update(patch)
	check(err)
	waitUntil(func() bool {
		got, err := audit.Find("User", "u001")
		return err == nil && got.String("email") == "u001@contacts.example.com"
	})
	fmt.Println("[audit]    still receives email via the virtual alias")

	// Rule 3: publishing a new attribute — publisher deploys first, then
	// subscribers, then a partial bootstrap digests existing data.
	user.AddField(synapse.F("tier", synapse.String))
	check(oldApp.Publish(user, synapse.PubSpec{Attrs: []string{"tier"}}))
	for _, id := range []string{"u001", "u002"} {
		p := synapse.NewRecord("User", id)
		p.Set("tier", "gold")
		_, err := ctl.Update(p)
		check(err)
	}

	auditUser.AddField(synapse.F("tier", synapse.String))
	check(auditApp.Subscribe(auditUser, synapse.SubSpec{From: "main-v1", Attrs: []string{"tier"}}))
	check(auditApp.Bootstrap("main-v1", "User")) // partial bootstrap
	waitUntil(func() bool {
		got, err := audit.Find("User", "u002")
		return err == nil && got.String("tier") == "gold"
	})
	fmt.Println("[audit]    picked up the new 'tier' attribute after a partial bootstrap")

	fmt.Println("migration: OK")
	newApp.StopWorkers()
	auditApp.StopWorkers()
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

func waitUntil(cond func() bool) {
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	log.Fatal("timed out waiting for replication")
}
