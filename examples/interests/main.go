// Interests: the paper's Example 3 (Fig 7) — matching data types with
// virtual attributes.
//
// A MongoDB publisher (Pub3) stores user interests in a native Array
// attribute. Two SQL subscribers integrate it differently:
//
//   - Sub3a flattens the array into a serialized text column — simple,
//     but interests cannot be queried efficiently;
//
//   - Sub3b uses a virtual attribute whose setter splits the array into
//     an Interest join table, so "find users interested in X" becomes an
//     indexed SQL query.
//
//     go run ./examples/interests
package main

import (
	"fmt"
	"log"
	"strings"
	"time"

	"synapse"
	"synapse/internal/storage"
)

func main() {
	fabric := synapse.NewFabric()

	// ------------------------------------------------------------------
	// Pub3: MongoDB with a native array attribute.
	// ------------------------------------------------------------------
	pub, err := synapse.NewApp(fabric, "pub3",
		synapse.NewDocumentMapper(synapse.MongoDB), synapse.Config{Mode: synapse.Causal})
	check(err)
	pubUser := synapse.NewModel("User",
		synapse.F("name", synapse.String),
		synapse.F("interests", synapse.StringList),
	)
	check(pub.Publish(pubUser, synapse.PubSpec{Attrs: []string{"name", "interests"}}))

	// ------------------------------------------------------------------
	// Sub3a: flattening subscriber — interests become one text column.
	// ------------------------------------------------------------------
	flatMapper := synapse.NewSQLMapper(synapse.Postgres)
	subFlat, err := synapse.NewApp(fabric, "sub3a", flatMapper, synapse.Config{})
	check(err)
	flatUser := synapse.NewModel("User",
		synapse.F("name", synapse.String),
		synapse.F("interests_text", synapse.String),
	)
	flatUser.DefineVirtual(&synapse.VirtualAttr{
		Name: "interests",
		Set: func(r *synapse.Record, v any) error {
			tmp := synapse.NewRecord("tmp", "tmp")
			tmp.Set("t", v)
			r.Set("interests_text", strings.Join(tmp.Strings("t"), ","))
			return nil
		},
	})
	check(subFlat.Subscribe(flatUser, synapse.SubSpec{From: "pub3", Attrs: []string{"name", "interests"}}))
	subFlat.StartWorkers(1)

	// ------------------------------------------------------------------
	// Sub3b: join-table subscriber — the Fig 7 virtual attribute.
	// ------------------------------------------------------------------
	joinMapper := synapse.NewSQLMapper(synapse.Postgres)
	subJoin, err := synapse.NewApp(fabric, "sub3b", joinMapper, synapse.Config{})
	check(err)
	interest := synapse.NewModel("Interest",
		synapse.FIndexed("user", synapse.Ref),
		synapse.FIndexed("tag", synapse.String),
	)
	check(joinMapper.Register(interest))
	joinUser := synapse.NewModel("User", synapse.F("name", synapse.String))
	joinUser.DefineVirtual(&synapse.VirtualAttr{
		Name: "interests",
		Set: func(r *synapse.Record, v any) error {
			// add_or_remove: resync the user's Interest rows to the
			// received tag set (Fig 7's Interest.add_or_remove).
			tmp := synapse.NewRecord("tmp", "tmp")
			tmp.Set("t", v)
			tags := tmp.Strings("t")
			existing, err := joinMapper.DB().Select("interests",
				storage.Predicate{Field: "user", Op: storage.Eq, Value: r.ID})
			if err != nil {
				return err
			}
			want := make(map[string]bool, len(tags))
			for _, tag := range tags {
				want[tag] = true
			}
			for _, row := range existing {
				tag, _ := row.Cols["tag"].(string)
				if want[tag] {
					delete(want, tag) // already present
					continue
				}
				if err := joinMapper.Delete("Interest", row.ID); err != nil {
					return err
				}
			}
			for tag := range want {
				row := synapse.NewRecord("Interest", r.ID+"/"+tag)
				row.Set("user", r.ID)
				row.Set("tag", tag)
				if err := joinMapper.Save(row); err != nil {
					return err
				}
			}
			return nil
		},
	})
	check(subJoin.Subscribe(joinUser, synapse.SubSpec{From: "pub3", Attrs: []string{"name", "interests"}}))
	subJoin.StartWorkers(1)

	// ------------------------------------------------------------------
	// Publish users with array interests; update one later.
	// ------------------------------------------------------------------
	ctl := pub.NewController(nil)
	users := map[string][]string{
		"100": {"cats", "dogs"},
		"101": {"dogs", "hiking"},
		"102": {"cooking"},
	}
	for id, tags := range users {
		rec := synapse.NewRecord("User", id)
		rec.Set("name", "user-"+id)
		rec.Set("interests", tags)
		_, err := ctl.Create(rec)
		check(err)
	}
	fmt.Println("[pub3]  published 3 users with array interests")

	waitUntil(func() bool { return joinMapper.Len("Interest") == 5 && flatMapper.Len("User") == 3 })

	// Sub3a: the flattened column round-tripped, but querying needs LIKE.
	rec, err := flatMapper.Find("User", "100")
	check(err)
	fmt.Printf("[sub3a] User/100 interests_text = %q (no efficient queries)\n",
		rec.String("interests_text"))

	// Sub3b: indexed join-table query "who likes dogs?".
	dogLovers, err := joinMapper.DB().Select("interests",
		storage.Predicate{Field: "tag", Op: storage.Eq, Value: "dogs"})
	check(err)
	var ids []string
	for _, row := range dogLovers {
		ids = append(ids, row.Cols["user"].(string))
	}
	fmt.Printf("[sub3b] users interested in dogs (indexed query): %v\n", ids)

	// An update reshapes the join table: user 100 drops cats, picks up
	// hiking.
	patch := synapse.NewRecord("User", "100")
	patch.Set("interests", []string{"dogs", "hiking"})
	_, err = ctl.Update(patch)
	check(err)
	waitUntil(func() bool {
		rows, err := joinMapper.DB().Select("interests",
			storage.Predicate{Field: "user", Op: storage.Eq, Value: "100"})
		if err != nil || len(rows) != 2 {
			return false
		}
		tags := map[string]bool{}
		for _, row := range rows {
			tags[row.Cols["tag"].(string)] = true
		}
		return tags["dogs"] && tags["hiking"]
	})
	fmt.Println("[sub3b] after update, User/100 rows resynced to {dogs, hiking}")

	fmt.Println("interests: OK")
	subFlat.StopWorkers()
	subJoin.StopWorkers()
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

func waitUntil(cond func() bool) {
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	log.Fatal("timed out waiting for replication")
}
