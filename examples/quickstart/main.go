// Quickstart: the paper's Fig 1 / Fig 2 / Fig 4 in one runnable program.
//
// A MongoDB-backed publisher shares its User model with three
// subscribers on three different engines — a SQL database, a search
// engine, and another document store — plus a DB-less mailer that
// observes user registrations and sends welcome emails (skipping them
// while bootstrapping, the Fig 2 pattern).
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"synapse"
	"synapse/internal/storage/searchdb"
)

func main() {
	fabric := synapse.NewFabric()

	// ------------------------------------------------------------------
	// Publisher (Pub1): runs on MongoDB, publishes User{name, email}.
	// ------------------------------------------------------------------
	pub, err := synapse.NewApp(fabric, "pub1",
		synapse.NewDocumentMapper(synapse.MongoDB), synapse.Config{Mode: synapse.Causal})
	check(err)
	pubUser := synapse.NewModel("User",
		synapse.F("name", synapse.String),
		synapse.F("email", synapse.String),
		synapse.F("password_hash", synapse.String), // never published
	)
	check(pub.Publish(pubUser, synapse.PubSpec{Attrs: []string{"name", "email"}}))

	// ------------------------------------------------------------------
	// Subscriber 1a: any SQL DB (Fig 4).
	// ------------------------------------------------------------------
	sqlMapper := synapse.NewSQLMapper(synapse.Postgres)
	subSQL, err := synapse.NewApp(fabric, "sub1a", sqlMapper, synapse.Config{})
	check(err)
	sqlUser := synapse.NewModel("User",
		synapse.F("name", synapse.String),
		synapse.F("email", synapse.String),
	)
	check(subSQL.Subscribe(sqlUser, synapse.SubSpec{From: "pub1", Attrs: []string{"name", "email"}}))
	subSQL.StartWorkers(2)

	// ------------------------------------------------------------------
	// Subscriber 1b: Elasticsearch with an analyzed name field (Fig 4).
	// ------------------------------------------------------------------
	esMapper := synapse.NewSearchMapper()
	subES, err := synapse.NewApp(fabric, "sub1b", esMapper, synapse.Config{})
	check(err)
	esUser := synapse.NewModel("User", synapse.F("name", synapse.String))
	check(subES.Subscribe(esUser, synapse.SubSpec{From: "pub1", Attrs: []string{"name"}}))
	esMapper.SetAnalyzer("User", "name", searchdb.SimpleAnalyzer)
	subES.StartWorkers(2)

	// ------------------------------------------------------------------
	// Subscriber 1c: another MongoDB (Fig 4).
	// ------------------------------------------------------------------
	docMapper := synapse.NewDocumentMapper(synapse.MongoDB)
	subDoc, err := synapse.NewApp(fabric, "sub1c", docMapper, synapse.Config{})
	check(err)
	docUser := synapse.NewModel("User", synapse.F("name", synapse.String))
	check(subDoc.Subscribe(docUser, synapse.SubSpec{From: "pub1", Attrs: []string{"name"}}))
	subDoc.StartWorkers(2)

	// ------------------------------------------------------------------
	// Mailer: DB-less observer with the Bootstrap? guard (Fig 2).
	// ------------------------------------------------------------------
	mailer, err := synapse.NewApp(fabric, "mailer", nil, synapse.Config{})
	check(err)
	mailUser := synapse.NewModel("User",
		synapse.F("name", synapse.String),
		synapse.F("email", synapse.String),
	)
	mailUser.Callbacks.On(synapse.AfterCreate, func(ctx *synapse.CallbackCtx) error {
		if ctx.Bootstrapping {
			return nil // don't re-welcome existing users while catching up
		}
		fmt.Printf("[mailer]  welcome email -> %s\n", ctx.Record.String("email"))
		return nil
	})
	check(mailer.Subscribe(mailUser, synapse.SubSpec{
		From: "pub1", Attrs: []string{"name", "email"}, Observer: true,
	}))
	mailer.StartWorkers(1)

	// ------------------------------------------------------------------
	// The publisher's controllers create and update users; Synapse
	// replicates them everywhere.
	// ------------------------------------------------------------------
	people := []struct{ id, name, email string }{
		{"1", "Ada Lovelace", "ada@example.com"},
		{"2", "Grace Hopper", "grace@example.com"},
		{"3", "Barbara Liskov", "barbara@example.com"},
	}
	for _, p := range people {
		session := pub.NewSession("User", p.id)
		ctl := pub.NewController(session)
		rec := synapse.NewRecord("User", p.id)
		rec.Set("name", p.name)
		rec.Set("email", p.email)
		rec.Set("password_hash", "s3cr3t") // stays local
		_, err := ctl.Create(rec)
		check(err)
		fmt.Printf("[pub1]    created User/%s (%s)\n", p.id, p.name)
	}

	// An update flows too.
	ctl := pub.NewController(pub.NewSession("User", "2"))
	patch := synapse.NewRecord("User", "2")
	patch.Set("name", "Rear Admiral Grace Hopper")
	_, err = ctl.Update(patch)
	check(err)
	fmt.Println("[pub1]    updated User/2")

	waitUntil(func() bool { return sqlMapper.Len("User") == 3 && docMapper.Len("User") == 3 })

	// Each subscriber now queries its own engine natively.
	rec, err := sqlMapper.Find("User", "2")
	check(err)
	fmt.Printf("[sub1a]   SQL row User/2 = %q <%s>\n", rec.String("name"), rec.String("email"))
	if rec.Has("password_hash") {
		log.Fatal("unpublished attribute leaked!")
	}

	waitUntil(func() bool {
		hits, err := esMapper.Search("User", searchdb.Query{
			Match: &searchdb.MatchQuery{Field: "name", Text: "grace"},
		})
		return err == nil && len(hits) == 1
	})
	hits, err := esMapper.Search("User", searchdb.Query{
		Match: &searchdb.MatchQuery{Field: "name", Text: "grace"},
	})
	check(err)
	fmt.Printf("[sub1b]   search \"grace\" -> User/%s\n", hits[0].ID)

	fmt.Println("quickstart: OK")

	subSQL.StopWorkers()
	subES.StopWorkers()
	subDoc.StopWorkers()
	mailer.StopWorkers()
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

func waitUntil(cond func() bool) {
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	log.Fatal("timed out waiting for replication")
}
