// Ecosystem: the paper's §5.2 social product recommender (Fig 11).
//
// Diaspora (a social network, PostgreSQL) and Discourse (a discussion
// board, PostgreSQL) publish their posts. A semantic analyzer (MySQL)
// subscribes to both, extracts topics of interest, and decorates the
// User model with them. Spree (an e-commerce app, MySQL) subscribes to
// the decorated User and recommends products matching the user's
// interests. A DB-less mailer observes Diaspora posts.
//
//	go run ./examples/ecosystem
package main

import (
	"fmt"
	"log"
	"strings"
	"time"

	"synapse"
	"synapse/internal/storage"
)

// extractTopics is the stand-in for the paper's Textalytics service.
func extractTopics(body string) []string {
	known := []string{"coffee", "keyboards", "hiking", "cooking", "music"}
	var out []string
	for _, k := range known {
		if strings.Contains(strings.ToLower(body), k) {
			out = append(out, k)
		}
	}
	return out
}

func main() {
	fabric := synapse.NewFabric()

	// ------------------------------------------------------------------
	// Diaspora: owns User and Post.
	// ------------------------------------------------------------------
	diasporaMapper := synapse.NewSQLMapper(synapse.Postgres)
	diaspora, err := synapse.NewApp(fabric, "diaspora", diasporaMapper, synapse.Config{Mode: synapse.Causal})
	check(err)
	dUser := synapse.NewModel("User", synapse.F("name", synapse.String))
	dPost := synapse.NewModel("Post",
		synapse.F("author", synapse.Ref),
		synapse.F("body", synapse.String),
	)
	check(diaspora.Publish(dUser, synapse.PubSpec{Attrs: []string{"name"}}))
	check(diaspora.Publish(dPost, synapse.PubSpec{Attrs: []string{"author", "body"}}))

	// ------------------------------------------------------------------
	// Discourse: owns Topic.
	// ------------------------------------------------------------------
	discourseMapper := synapse.NewSQLMapper(synapse.Postgres)
	discourse, err := synapse.NewApp(fabric, "discourse", discourseMapper, synapse.Config{Mode: synapse.Causal})
	check(err)
	topic := synapse.NewModel("Topic",
		synapse.F("author", synapse.Ref),
		synapse.F("title", synapse.String),
	)
	check(discourse.Publish(topic, synapse.PubSpec{Attrs: []string{"author", "title"}}))

	// ------------------------------------------------------------------
	// Semantic analyzer: subscribes to posts and topics from both apps,
	// decorates User with interests.
	// ------------------------------------------------------------------
	analyzerMapper := synapse.NewSQLMapper(synapse.MySQL)
	analyzer, err := synapse.NewApp(fabric, "analyzer", analyzerMapper, synapse.Config{Mode: synapse.Causal})
	check(err)
	aUser := synapse.NewModel("User",
		synapse.F("name", synapse.String),
		synapse.F("interests", synapse.StringList),
	)
	decorate := func(author, text string) error {
		topics := extractTopics(text)
		if len(topics) == 0 {
			return nil
		}
		ctl := analyzer.NewController(nil)
		cur, err := ctl.Find("User", author)
		if err != nil {
			return err
		}
		merged := map[string]bool{}
		for _, t := range cur.Strings("interests") {
			merged[t] = true
		}
		for _, t := range topics {
			merged[t] = true
		}
		var all []string
		for t := range merged {
			all = append(all, t)
		}
		deco := synapse.NewRecord("User", author)
		deco.Set("interests", all)
		_, err = ctl.Update(deco)
		return err
	}
	aPost := synapse.NewModel("Post",
		synapse.F("author", synapse.Ref),
		synapse.F("body", synapse.String),
	)
	aPost.Callbacks.On(synapse.AfterCreate, func(ctx *synapse.CallbackCtx) error {
		if ctx.Bootstrapping {
			return nil
		}
		return decorate(ctx.Record.String("author"), ctx.Record.String("body"))
	})
	aTopic := synapse.NewModel("Topic",
		synapse.F("author", synapse.Ref),
		synapse.F("title", synapse.String),
	)
	aTopic.Callbacks.On(synapse.AfterCreate, func(ctx *synapse.CallbackCtx) error {
		if ctx.Bootstrapping {
			return nil
		}
		return decorate(ctx.Record.String("author"), ctx.Record.String("title"))
	})
	check(analyzer.Subscribe(aUser, synapse.SubSpec{From: "diaspora", Attrs: []string{"name"}}))
	check(analyzer.Subscribe(aPost, synapse.SubSpec{From: "diaspora", Attrs: []string{"author", "body"}}))
	check(analyzer.Subscribe(aTopic, synapse.SubSpec{From: "discourse", Attrs: []string{"author", "title"}}))
	check(analyzer.Publish(aUser, synapse.PubSpec{Attrs: []string{"interests"}}))
	analyzer.StartWorkers(2)

	// ------------------------------------------------------------------
	// Mailer: DB-less observer of Diaspora posts (causal mode: no
	// inconsistent notifications).
	// ------------------------------------------------------------------
	mailer, err := synapse.NewApp(fabric, "mailer", nil, synapse.Config{})
	check(err)
	mPost := synapse.NewModel("Post",
		synapse.F("author", synapse.Ref),
		synapse.F("body", synapse.String),
	)
	mPost.Callbacks.On(synapse.AfterCreate, func(ctx *synapse.CallbackCtx) error {
		if !ctx.Bootstrapping {
			fmt.Printf("[mailer]    notifying friends of %s\n", ctx.Record.String("author"))
		}
		return nil
	})
	check(mailer.Subscribe(mPost, synapse.SubSpec{
		From: "diaspora", Attrs: []string{"author", "body"}, Observer: true,
	}))
	mailer.StartWorkers(1)

	// ------------------------------------------------------------------
	// Spree: subscribes to the decorated User (both origins) and runs a
	// keyword recommender over its product catalog.
	// ------------------------------------------------------------------
	spreeMapper := synapse.NewSQLMapper(synapse.MySQL)
	spree, err := synapse.NewApp(fabric, "spree", spreeMapper, synapse.Config{})
	check(err)
	sUser := synapse.NewModel("User",
		synapse.F("name", synapse.String),
		synapse.F("interests", synapse.StringList),
	)
	check(spree.Subscribe(sUser, synapse.SubSpec{From: "diaspora", Attrs: []string{"name"}}))
	check(spree.Subscribe(sUser, synapse.SubSpec{From: "analyzer", Attrs: []string{"interests"}}))
	product := synapse.NewModel("Product",
		synapse.F("title", synapse.String),
		synapse.F("description", synapse.String),
	)
	check(spreeMapper.Register(product))
	spree.StartWorkers(2)

	// Spree's local product catalog.
	catalog := map[string][2]string{
		"prod-1": {"Artisan espresso machine", "great coffee at home"},
		"prod-2": {"Clacky mechanical keyboard", "keyboards for programmers"},
		"prod-3": {"Ultralight tent", "hiking and backpacking"},
		"prod-4": {"Cast-iron skillet", "cooking essential"},
	}
	for id, p := range catalog {
		rec := synapse.NewRecord("Product", id)
		rec.Set("title", p[0])
		rec.Set("description", p[1])
		check(spreeMapper.Save(rec))
	}

	// ------------------------------------------------------------------
	// Users act across the ecosystem.
	// ------------------------------------------------------------------
	dctl := diaspora.NewController(diaspora.NewSession("User", "alice"))
	u := synapse.NewRecord("User", "alice")
	u.Set("name", "Alice")
	_, err = dctl.Create(u)
	check(err)

	// Wait for the user to reach the analyzer before posts reference it.
	waitUntil(func() bool {
		_, err := analyzerMapper.Find("User", "alice")
		return err == nil
	})

	post := synapse.NewRecord("Post", "p1")
	post.Set("author", "alice")
	post.Set("body", "Nothing beats fresh coffee before a hiking trip!")
	_, err = dctl.Create(post)
	check(err)
	fmt.Println("[diaspora]  alice posted about coffee and hiking")

	tctl := discourse.NewController(discourse.NewSession("User", "alice"))
	tp := synapse.NewRecord("Topic", "t1")
	tp.Set("author", "alice")
	tp.Set("title", "Which mechanical keyboards do you recommend?")
	_, err = tctl.Create(tp)
	check(err)
	fmt.Println("[discourse] alice asked about keyboards")

	// Wait until the decoration reaches Spree with all three interests.
	waitUntil(func() bool {
		rec, err := spreeMapper.Find("User", "alice")
		return err == nil && len(rec.Strings("interests")) >= 3
	})

	// ------------------------------------------------------------------
	// Spree's recommender: keyword match interests against descriptions.
	// ------------------------------------------------------------------
	alice, err := spreeMapper.Find("User", "alice")
	check(err)
	fmt.Printf("[spree]     alice's interests: %v\n", alice.Strings("interests"))
	var recommendations []string
	products, err := spreeMapper.DB().Select("products")
	check(err)
	for _, row := range products {
		desc, _ := row.Cols["description"].(string)
		for _, interest := range alice.Strings("interests") {
			if strings.Contains(desc, interest) {
				title, _ := row.Cols["title"].(string)
				recommendations = append(recommendations, title)
				break
			}
		}
	}
	fmt.Printf("[spree]     recommended for alice: %v\n", recommendations)
	if len(recommendations) != 3 {
		log.Fatalf("expected 3 recommendations, got %v", recommendations)
	}
	_ = storage.Profile{}

	fmt.Println("ecosystem: OK")
	analyzer.StopWorkers()
	mailer.StopWorkers()
	spree.StopWorkers()
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

func waitUntil(cond func() bool) {
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	log.Fatal("timed out waiting for replication")
}
