// Crowdtap: the paper's production topology (Fig 10) — a main app
// surrounded by eight microservices with mixed delivery modes.
//
//	Main App (MongoDB)  --causal-->  Moderation (MongoDB)
//	                    --causal-->  Targeting (MongoDB)
//	                    --causal-->  Mailer (MongoDB)
//	                    --causal-->  Spree (PostgreSQL)
//	                    --weak--->   Analytics (Elasticsearch)
//	                    --weak--->   Search Engine (Elasticsearch)
//	                    --weak--->   Reporting (MongoDB)
//	FB Crawler (MongoDB) --causal--> Targeting
//
// Causal subscribers (the mailer must never see inconsistent state)
// coexist with weak subscribers (analytics tolerates reordering but
// must stay available) — the §6.5 lesson applied.
//
//	go run ./examples/crowdtap
package main

import (
	"fmt"
	"log"
	"time"

	"synapse"
	"synapse/internal/storage/searchdb"
)

func userModel() *synapse.Model {
	return synapse.NewModel("User",
		synapse.F("name", synapse.String),
		synapse.F("email", synapse.String),
		synapse.F("points", synapse.Int),
	)
}

func actionModel() *synapse.Model {
	return synapse.NewModel("Action",
		synapse.F("user", synapse.Ref),
		synapse.F("kind", synapse.String),
		synapse.F("brand", synapse.String),
	)
}

func main() {
	fabric := synapse.NewFabric()

	// ------------------------------------------------------------------
	// Main app: owner of User and Action.
	// ------------------------------------------------------------------
	mainMapper := synapse.NewDocumentMapper(synapse.MongoDB)
	mainApp, err := synapse.NewApp(fabric, "main", mainMapper, synapse.Config{Mode: synapse.Causal})
	check(err)
	check(mainApp.Publish(userModel(), synapse.PubSpec{Attrs: []string{"name", "email", "points"}}))
	check(mainApp.Publish(actionModel(), synapse.PubSpec{Attrs: []string{"user", "kind", "brand"}}))

	// ------------------------------------------------------------------
	// FB crawler: a second publisher decorating User with social data.
	// ------------------------------------------------------------------
	crawlerMapper := synapse.NewDocumentMapper(synapse.MongoDB)
	crawler, err := synapse.NewApp(fabric, "fb-crawler", crawlerMapper, synapse.Config{Mode: synapse.Causal})
	check(err)
	crawlerUser := userModel()
	crawlerUser.AddField(synapse.F("social_reach", synapse.Int))
	check(crawler.Subscribe(crawlerUser, synapse.SubSpec{From: "main", Attrs: []string{"name"}}))
	check(crawler.Publish(crawlerUser, synapse.PubSpec{Attrs: []string{"social_reach"}}))
	crawler.StartWorkers(2)

	type svc struct {
		name   string
		mapper synapse.Mapper
		mode   synapse.DeliveryMode
		models []string // which models to subscribe
	}
	services := []svc{
		{"moderation", synapse.NewDocumentMapper(synapse.MongoDB), synapse.Causal, []string{"Action"}},
		{"targeting", synapse.NewDocumentMapper(synapse.MongoDB), synapse.Causal, []string{"User", "Action"}},
		{"mailer", synapse.NewDocumentMapper(synapse.MongoDB), synapse.Causal, []string{"User"}},
		{"spree", synapse.NewSQLMapper(synapse.Postgres), synapse.Causal, []string{"User"}},
		{"analytics", synapse.NewSearchMapper(), synapse.Weak, []string{"User", "Action"}},
		{"search-engine", synapse.NewSearchMapper(), synapse.Weak, []string{"User"}},
		{"reporting", synapse.NewDocumentMapper(synapse.MongoDB), synapse.Weak, []string{"Action"}},
	}
	apps := map[string]*synapse.App{}
	mappers := map[string]synapse.Mapper{}
	for _, s := range services {
		app, err := synapse.NewApp(fabric, s.name, s.mapper, synapse.Config{})
		check(err)
		for _, m := range s.models {
			var desc *synapse.Model
			var attrs []string
			if m == "User" {
				desc = userModel()
				attrs = []string{"name", "email", "points"}
			} else {
				desc = actionModel()
				attrs = []string{"user", "kind", "brand"}
			}
			check(app.Subscribe(desc, synapse.SubSpec{From: "main", Attrs: attrs, Mode: s.mode}))
		}
		app.StartWorkers(2)
		apps[s.name] = app
		mappers[s.name] = s.mapper
	}
	// Targeting additionally consumes the crawler's decoration, layered
	// onto the same User descriptor it already subscribes to.
	targetingUser, ok := apps["targeting"].Descriptor("User")
	if !ok {
		log.Fatal("targeting lost its User model")
	}
	targetingUser.AddField(synapse.F("social_reach", synapse.Int))
	check(apps["targeting"].Subscribe(targetingUser, synapse.SubSpec{
		From: "fb-crawler", Attrs: []string{"social_reach"},
	}))

	// ------------------------------------------------------------------
	// Production traffic.
	// ------------------------------------------------------------------
	fmt.Printf("ecosystem: %d services on the fabric: %v\n", len(fabric.Apps()), fabric.Apps())
	brands := []string{"verizon", "sony", "mastercard"}
	for i := 0; i < 30; i++ {
		uid := fmt.Sprintf("u%02d", i%10)
		session := mainApp.NewSession("User", uid)
		ctl := mainApp.NewController(session)
		if i < 10 {
			u := synapse.NewRecord("User", uid)
			u.Set("name", "member-"+uid)
			u.Set("email", uid+"@example.com")
			u.Set("points", 0)
			_, err := ctl.Create(u)
			check(err)
			continue
		}
		act := synapse.NewRecord("Action", fmt.Sprintf("a%02d", i))
		act.Set("user", uid)
		act.Set("kind", "share")
		act.Set("brand", brands[i%len(brands)])
		_, err := ctl.Create(act)
		check(err)
		patch := synapse.NewRecord("User", uid)
		patch.Set("points", int64(i))
		_, err = ctl.Update(patch)
		check(err)
	}

	// Crawler decorates users it has seen.
	waitUntil(func() bool { return crawlerMapper.Len("User") == 10 })
	cctl := crawler.NewController(nil)
	for i := 0; i < 10; i++ {
		uid := fmt.Sprintf("u%02d", i)
		if _, err := cctl.Find("User", uid); err != nil {
			continue
		}
		deco := synapse.NewRecord("User", uid)
		deco.Set("social_reach", int64(100*i))
		_, err := cctl.Update(deco)
		check(err)
	}

	// ------------------------------------------------------------------
	// Every service sees its slice of the data in its own engine.
	// ------------------------------------------------------------------
	waitUntil(func() bool { return mappers["reporting"].Len("Action") == 20 })
	waitUntil(func() bool { return mappers["spree"].Len("User") == 10 })
	waitUntil(func() bool {
		rec, err := mappers["targeting"].Find("User", "u09")
		return err == nil && rec.Int("social_reach") == 900
	})

	es := mappers["analytics"].(interface {
		Aggregate(modelName, field string, q searchdb.Query) ([]searchdb.Bucket, error)
	})
	waitUntil(func() bool {
		buckets, err := es.Aggregate("Action", "brand", searchdb.Query{})
		if err != nil {
			return false
		}
		total := 0
		for _, b := range buckets {
			total += b.Count
		}
		return total == 20
	})
	buckets, err := es.Aggregate("Action", "brand", searchdb.Query{})
	check(err)
	fmt.Println("[analytics] actions per brand (Elasticsearch aggregation):")
	for _, b := range buckets {
		fmt.Printf("             %-12s %d\n", b.Token, b.Count)
	}

	tRec, err := mappers["targeting"].Find("User", "u09")
	check(err)
	fmt.Printf("[targeting] u09: points=%d social_reach=%d (merged from 2 publishers)\n",
		tRec.Int("points"), tRec.Int("social_reach"))

	fmt.Println("crowdtap: OK")
	crawler.StopWorkers()
	for _, app := range apps {
		app.StopWorkers()
	}
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

func waitUntil(cond func() bool) {
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	log.Fatal("timed out waiting for replication")
}
