// Socialgraph: the paper's Example 2 (Fig 5) — mapping data models with
// Observers.
//
// The main application (Pub2) stores Users and Friendships in a SQL
// database, where friendships live in their own table. A recommendation
// engine (Sub2) integrates the same data into a graph database, where a
// friendship is far better represented as an edge between User nodes.
// An Observer subscribes to the Friendship model and, instead of
// persisting rows, maintains graph edges — letting the subscriber run
// friends-of-friends recommendation traversals natively.
//
//	go run ./examples/socialgraph
package main

import (
	"fmt"
	"log"
	"time"

	"synapse"
)

func main() {
	fabric := synapse.NewFabric()

	// ------------------------------------------------------------------
	// Pub2: the main app on SQL. Friendships are rows.
	// ------------------------------------------------------------------
	pub, err := synapse.NewApp(fabric, "pub2",
		synapse.NewSQLMapper(synapse.MySQL), synapse.Config{Mode: synapse.Causal})
	check(err)
	user := synapse.NewModel("User",
		synapse.F("name", synapse.String),
		synapse.F("likes", synapse.StringList), // product ids the user liked
	)
	friendship := synapse.NewModel("Friendship",
		synapse.F("user1", synapse.Ref),
		synapse.F("user2", synapse.Ref),
	)
	check(pub.Publish(user, synapse.PubSpec{Attrs: []string{"name", "likes"}}))
	check(pub.Publish(friendship, synapse.PubSpec{Attrs: []string{"user1", "user2"}}))

	// ------------------------------------------------------------------
	// Sub2: the recommendation engine on Neo4j. Users are nodes;
	// Friendship is an Observer that adds/removes edges (Fig 5 right).
	// ------------------------------------------------------------------
	graph := synapse.NewGraphMapper()
	sub, err := synapse.NewApp(fabric, "sub2", graph, synapse.Config{})
	check(err)
	gUser := synapse.NewModel("User",
		synapse.F("name", synapse.String),
		synapse.F("likes", synapse.StringList),
	)
	check(sub.Subscribe(gUser, synapse.SubSpec{From: "pub2", Attrs: []string{"name", "likes"}}))

	gFriendship := synapse.NewModel("Friendship",
		synapse.F("user1", synapse.Ref),
		synapse.F("user2", synapse.Ref),
	)
	gFriendship.Callbacks.On(synapse.AfterCreate, func(ctx *synapse.CallbackCtx) error {
		return graph.Relate("User", ctx.Record.String("user1"), "FRIEND",
			"User", ctx.Record.String("user2"))
	})
	gFriendship.Callbacks.On(synapse.AfterDestroy, func(ctx *synapse.CallbackCtx) error {
		return graph.Unrelate("User", ctx.Record.String("user1"), "FRIEND",
			"User", ctx.Record.String("user2"))
	})
	check(sub.Subscribe(gFriendship, synapse.SubSpec{
		From: "pub2", Attrs: []string{"user1", "user2"}, Observer: true,
	}))
	sub.StartWorkers(2)

	// ------------------------------------------------------------------
	// Seed a small social network on the publisher.
	// ------------------------------------------------------------------
	people := map[string][]string{ // id -> liked products
		"alice": {"espresso-machine"},
		"bob":   {"mechanical-keyboard"},
		"carol": {"trail-shoes", "headlamp"},
		"dave":  {"espresso-machine", "grinder"},
	}
	ctl := pub.NewController(nil)
	for id, likes := range people {
		rec := synapse.NewRecord("User", id)
		rec.Set("name", id)
		rec.Set("likes", likes)
		_, err := ctl.Create(rec)
		check(err)
	}
	addFriend := func(fid, a, b string) {
		rec := synapse.NewRecord("Friendship", fid)
		rec.Set("user1", a)
		rec.Set("user2", b)
		_, err := ctl.Create(rec)
		check(err)
		fmt.Printf("[pub2] %s <-> %s\n", a, b)
	}
	addFriend("f1", "alice", "bob")
	addFriend("f2", "bob", "carol")
	addFriend("f3", "carol", "dave")

	waitUntil(func() bool { return graph.Len("User") == 4 && graph.DB().Degree("User:carol", "FRIEND") == 2 })

	// ------------------------------------------------------------------
	// Graph-native recommendations: what do friends (and friends of
	// friends) like that alice doesn't have yet?
	// ------------------------------------------------------------------
	network := graph.Network("User", "alice", "FRIEND", 2) // bob, carol
	fmt.Printf("[sub2] alice's 2-hop network: %v\n", network)

	liked := map[string]bool{}
	for _, friend := range network {
		rec, err := graph.Find("User", friend)
		check(err)
		for _, product := range rec.Strings("likes") {
			liked[product] = true
		}
	}
	self, err := graph.Find("User", "alice")
	check(err)
	for _, product := range self.Strings("likes") {
		delete(liked, product)
	}
	fmt.Printf("[sub2] recommendations for alice: %v\n", keys(liked))

	// ------------------------------------------------------------------
	// Unfriending removes the edge through the same observer.
	// ------------------------------------------------------------------
	check(ctl.Destroy("Friendship", "f2"))
	waitUntil(func() bool { return graph.DB().Degree("User:bob", "FRIEND") == 1 })
	fmt.Printf("[sub2] after unfriending, alice's network: %v\n",
		graph.Network("User", "alice", "FRIEND", 2))

	fmt.Println("socialgraph: OK")
	sub.StopWorkers()
}

func keys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

func waitUntil(cond func() bool) {
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	log.Fatal("timed out waiting for replication")
}
