package synapse_test

// Benchmarks, one per table/figure of the paper's evaluation (§6).
//
// These testing.B benches measure the library's intrinsic costs with
// zero injected latency, so they are CPU-bound and stable. The full
// figure regenerations — with the scaled latency profiles, parameter
// sweeps, and paper-style output — live in cmd/synapse-bench; see
// EXPERIMENTS.md.

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"synapse"
	"synapse/internal/bench"
	"synapse/internal/core"
	"synapse/internal/storage"
	"synapse/internal/vstore"
	"synapse/internal/wire"
	"synapse/internal/workload"
)

// BenchmarkFig13a_PublishByDeps measures the publisher write path as
// the number of dependencies per message grows (Fig 13a's x-axis),
// without injected version-store latency.
func BenchmarkFig13a_PublishByDeps(b *testing.B) {
	for _, deps := range []int{1, 10, 100, 1000} {
		b.Run(fmt.Sprintf("deps=%d", deps), func(b *testing.B) {
			fabric := synapse.NewFabric()
			app, err := synapse.NewApp(fabric, "pub",
				synapse.NewDocumentMapper(synapse.MongoDB),
				synapse.Config{Mode: synapse.Causal, VStoreShards: 8})
			if err != nil {
				b.Fatal(err)
			}
			item := synapse.NewModel("Item", synapse.F("v", synapse.Int))
			if err := app.Publish(item, synapse.PubSpec{Attrs: []string{"v"}}); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ctl := app.NewController(nil)
				for d := 0; d < deps-1; d++ {
					ctl.AddReadDeps("Item", fmt.Sprintf("dep-%d", d))
				}
				rec := synapse.NewRecord("Item", fmt.Sprintf("it-%d", i))
				rec.Set("v", i)
				if _, err := ctl.Create(rec); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig13a_PublishByEngine measures the single-dependency write
// path across publisher engines (Fig 13a's series).
func BenchmarkFig13a_PublishByEngine(b *testing.B) {
	for _, engine := range []string{bench.PostgreSQL, bench.MySQL, bench.MongoDB, bench.Cassandra, bench.Ephemeral} {
		b.Run(engine, func(b *testing.B) {
			fabric := core.NewFabric()
			app, err := core.NewApp(fabric, "pub", bench.NewMapper(engine, storage.Profile{}),
				core.Config{Mode: core.Causal, VStoreShards: 8})
			if err != nil {
				b.Fatal(err)
			}
			item := synapse.NewModel("Item", synapse.F("v", synapse.Int))
			spec := core.PubSpec{Attrs: []string{"v"}, Ephemeral: engine == bench.Ephemeral}
			if err := app.Publish(item, spec); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ctl := app.NewController(nil)
				rec := synapse.NewRecord("Item", fmt.Sprintf("it-%d", i))
				rec.Set("v", i)
				if _, err := ctl.Create(rec); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig13b_Pipeline measures full publish->broker->subscribe
// pipelines for representative engine pairs (Fig 13b's series), with
// the publisher and subscriber running concurrently.
func BenchmarkFig13b_Pipeline(b *testing.B) {
	pairs := []bench.EnginePair{
		{Pub: bench.Ephemeral, Sub: bench.Ephemeral},
		{Pub: bench.MongoDB, Sub: bench.RethinkDB},
		{Pub: bench.PostgreSQL, Sub: bench.TokuMX},
		{Pub: bench.Cassandra, Sub: bench.Elasticsearch},
		{Pub: bench.MySQL, Sub: bench.Neo4j},
	}
	for _, pair := range pairs {
		b.Run(pair.Pub+"_to_"+pair.Sub, func(b *testing.B) {
			f := core.NewFabric()
			pub, err := core.NewApp(f, "pub", bench.NewMapper(pair.Pub, storage.Profile{}),
				core.Config{Mode: core.Causal, VStoreShards: 8})
			if err != nil {
				b.Fatal(err)
			}
			sub, err := core.NewApp(f, "sub", bench.NewMapper(pair.Sub, storage.Profile{}),
				core.Config{VStoreShards: 8})
			if err != nil {
				b.Fatal(err)
			}
			post, comment := bench.SocialModels()
			eph := pair.Pub == bench.Ephemeral
			obs := pair.Sub == bench.Ephemeral
			if err := pub.Publish(post, core.PubSpec{Attrs: []string{"author", "body"}, Ephemeral: eph}); err != nil {
				b.Fatal(err)
			}
			if err := pub.Publish(comment, core.PubSpec{Attrs: []string{"post", "author", "body"}, Ephemeral: eph}); err != nil {
				b.Fatal(err)
			}
			sPost, sComment := bench.SocialModels()
			if err := sub.Subscribe(sPost, core.SubSpec{From: "pub", Attrs: []string{"author", "body"}, Observer: obs}); err != nil {
				b.Fatal(err)
			}
			if err := sub.Subscribe(sComment, core.SubSpec{From: "pub", Attrs: []string{"post", "author", "body"}, Observer: obs}); err != nil {
				b.Fatal(err)
			}
			sub.StartWorkers(8)
			defer sub.StopWorkers()

			gen := workload.NewSocialGen(1, 64)
			var sessions sync.Map
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					op := gen.Next()
					sv, _ := sessions.LoadOrStore(op.UserID, pub.NewSession("User", op.UserID))
					ctl := pub.NewController(sv.(*core.Session))
					rec := synapse.NewRecord("Post", op.ID)
					if op.Kind == workload.OpComment {
						ctl.AddReadDeps("Post", op.PostID)
						rec = synapse.NewRecord("Comment", op.ID)
						rec.Set("post", op.PostID)
					}
					rec.Set("author", op.UserID)
					rec.Set("body", "b")
					if _, err := ctl.Create(rec); err != nil {
						b.Fatal(err)
					}
				}
			})
			b.StopTimer()
			// Drain so the next run starts clean.
			deadline := time.Now().Add(30 * time.Second)
			for sub.Processed.Count() < int64(b.N) && time.Now().Before(deadline) {
				time.Sleep(time.Millisecond)
			}
		})
	}
}

// BenchmarkFig13c_DeliveryModes measures subscriber message processing
// under each delivery mode (Fig 13c's series) with 8 workers and no
// callback cost — the ordering machinery itself.
func BenchmarkFig13c_DeliveryModes(b *testing.B) {
	for _, mode := range []core.DeliveryMode{core.Weak, core.Causal, core.Global} {
		b.Run(mode.String(), func(b *testing.B) {
			f := core.NewFabric()
			pub, err := core.NewApp(f, "pub", bench.NewMapper(bench.MongoDB, storage.Profile{}),
				core.Config{Mode: mode, VStoreShards: 8})
			if err != nil {
				b.Fatal(err)
			}
			sub, err := core.NewApp(f, "sub", bench.NewMapper(bench.MongoDB, storage.Profile{}),
				core.Config{VStoreShards: 8})
			if err != nil {
				b.Fatal(err)
			}
			post, _ := bench.SocialModels()
			if err := pub.Publish(post, core.PubSpec{Attrs: []string{"author", "body"}}); err != nil {
				b.Fatal(err)
			}
			sPost, _ := bench.SocialModels()
			if err := sub.Subscribe(sPost, core.SubSpec{From: "pub", Attrs: []string{"author", "body"}, Mode: mode}); err != nil {
				b.Fatal(err)
			}
			gen := workload.NewSocialGen(1, 64)
			gen.SetCommentRatio(0)
			for i := 0; i < b.N; i++ {
				op := gen.Next()
				ctl := pub.NewController(nil)
				rec := synapse.NewRecord("Post", op.ID)
				rec.Set("author", op.UserID)
				rec.Set("body", "b")
				if _, err := ctl.Create(rec); err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			sub.StartWorkers(8)
			deadline := time.Now().Add(5 * time.Minute)
			for sub.Processed.Count() < int64(b.N) && time.Now().Before(deadline) {
				time.Sleep(100 * time.Microsecond)
			}
			b.StopTimer()
			sub.StopWorkers()
			if sub.Processed.Count() < int64(b.N) {
				b.Fatalf("processed %d of %d", sub.Processed.Count(), b.N)
			}
		})
	}
}

// BenchmarkFig12a_ControllerMix measures full controller invocations
// drawn from the Crowdtap production mix (Fig 12a) with the application
// sleep removed — i.e., the pure Synapse cost per production call.
func BenchmarkFig12a_ControllerMix(b *testing.B) {
	f := core.NewFabric()
	app, err := core.NewApp(f, "crowdtap", bench.NewMapper(bench.MongoDB, storage.Profile{}),
		core.Config{Mode: core.Causal, VStoreShards: 8})
	if err != nil {
		b.Fatal(err)
	}
	action := synapse.NewModel("Action", synapse.F("kind", synapse.String))
	if err := app.Publish(action, core.PubSpec{Attrs: []string{"kind"}}); err != nil {
		b.Fatal(err)
	}
	sampler := workload.NewSampler(1, workload.CrowdtapMix())
	var next atomic.Int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		profile, msgs := sampler.Next()
		ctl := app.NewController(app.NewSession("User", fmt.Sprintf("u%d", i%500)))
		for m := 0; m < msgs; m++ {
			deps := sampler.SampleDeps(profile)
			for d := 0; d < deps; d++ {
				ctl.AddReadDeps("Action", fmt.Sprintf("seen-%d", d))
			}
			rec := synapse.NewRecord("Action", fmt.Sprintf("a-%d", next.Add(1)))
			rec.Set("kind", profile.Name)
			if _, err := ctl.Create(rec); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkFig9_EcosystemPost measures one end-to-end ecosystem hop:
// publishing a post and fanning it out through the broker (the Fig 9a
// pipeline's first stage).
func BenchmarkFig9_EcosystemPost(b *testing.B) {
	f := core.NewFabric()
	pub, err := core.NewApp(f, "diaspora", bench.NewMapper(bench.PostgreSQL, storage.Profile{}),
		core.Config{Mode: core.Causal})
	if err != nil {
		b.Fatal(err)
	}
	post, _ := bench.SocialModels()
	if err := pub.Publish(post, core.PubSpec{Attrs: []string{"author", "body"}}); err != nil {
		b.Fatal(err)
	}
	// Three downstream queues, like the mailer/analyzer/spree fan-out.
	for _, q := range []string{"mailer", "analyzer", "spree"} {
		f.Broker.DeclareQueue(q, 0)
		if err := f.Broker.Bind(q, "diaspora"); err != nil {
			b.Fatal(err)
		}
	}
	sess := pub.NewSession("User", "1")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctl := pub.NewController(sess)
		rec := synapse.NewRecord("Post", fmt.Sprintf("p%d", i))
		rec.Set("author", "1")
		rec.Set("body", "post body text")
		if _, err := ctl.Create(rec); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblation_HashCardinality measures causal subscriber
// processing as the dependency hash space shrinks (cardinality 1 =
// global ordering, §4.2).
func BenchmarkAblation_HashCardinality(b *testing.B) {
	for _, card := range []uint64{0, 1024, 1} {
		name := fmt.Sprintf("cardinality=%d", card)
		if card == 0 {
			name = "cardinality=unbounded"
		}
		b.Run(name, func(b *testing.B) {
			f := core.NewFabric()
			pub, err := core.NewApp(f, "pub", bench.NewMapper(bench.MongoDB, storage.Profile{}),
				core.Config{Mode: core.Causal, DepCardinality: card})
			if err != nil {
				b.Fatal(err)
			}
			sub, err := core.NewApp(f, "sub", bench.NewMapper(bench.MongoDB, storage.Profile{}),
				core.Config{DepCardinality: card})
			if err != nil {
				b.Fatal(err)
			}
			post, _ := bench.SocialModels()
			if err := pub.Publish(post, core.PubSpec{Attrs: []string{"author", "body"}}); err != nil {
				b.Fatal(err)
			}
			sPost, _ := bench.SocialModels()
			if err := sub.Subscribe(sPost, core.SubSpec{From: "pub", Attrs: []string{"author", "body"}}); err != nil {
				b.Fatal(err)
			}
			gen := workload.NewSocialGen(1, 64)
			gen.SetCommentRatio(0)
			for i := 0; i < b.N; i++ {
				op := gen.Next()
				ctl := pub.NewController(nil)
				rec := synapse.NewRecord("Post", op.ID)
				rec.Set("author", op.UserID)
				rec.Set("body", "b")
				if _, err := ctl.Create(rec); err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			sub.StartWorkers(8)
			deadline := time.Now().Add(5 * time.Minute)
			for sub.Processed.Count() < int64(b.N) && time.Now().Before(deadline) {
				time.Sleep(100 * time.Microsecond)
			}
			b.StopTimer()
			sub.StopWorkers()
		})
	}
}

// BenchmarkTable3_AdapterSave measures the per-adapter subscriber
// persistence cost (the operational face of Table 3's adapters).
func BenchmarkTable3_AdapterSave(b *testing.B) {
	for _, engine := range bench.Engines() {
		b.Run(engine, func(b *testing.B) {
			m := bench.NewMapper(engine, storage.Profile{})
			d := synapse.NewModel("Item",
				synapse.F("a", synapse.String),
				synapse.F("n", synapse.Int),
			)
			if err := m.Register(d); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rec := synapse.NewRecord("Item", fmt.Sprintf("it-%d", i))
				rec.Set("a", "value")
				rec.Set("n", i)
				if err := m.Save(rec); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkWire_MarshalRoundTrip measures the message codec (every
// replicated write pays it twice).
func BenchmarkWire_MarshalRoundTrip(b *testing.B) {
	msg := &wire.Message{
		App: "pub",
		Operations: []wire.Operation{{
			Operation:  wire.OpUpdate,
			Types:      []string{"User"},
			ID:         "100",
			Attributes: map[string]any{"name": "alice", "interests": []any{"cats", "dogs"}},
			ObjectDep:  "1234",
		}},
		Dependencies: map[string]uint64{"1234": 42, "99": 7},
		PublishedAt:  time.Now(),
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		data, err := wire.Marshal(msg)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := wire.Unmarshal(data); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkVStore_Bump measures the version-store counter update at the
// heart of the publisher algorithm.
func BenchmarkVStore_Bump(b *testing.B) {
	s := vstore.New(vstore.Config{Shards: 8})
	keys := make([]vstore.Key, 4)
	for i := range keys {
		keys[i] = s.KeyFor(fmt.Sprintf("obj-%d", i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		held, err := s.LockWrites(keys[:2])
		if err != nil {
			b.Fatal(err)
		}
		if _, err := s.Bump(keys[2:], keys[:2]); err != nil {
			b.Fatal(err)
		}
		s.UnlockWrites(held)
	}
}
