// Command synapse-bench regenerates every table and figure of the
// paper's evaluation (§6). Each experiment prints the same rows or
// series the paper reports; EXPERIMENTS.md records the scaling choices
// and compares the measured shapes with the paper's.
//
// Usage:
//
//	synapse-bench -exp table1|table3|fig8|fig9a|fig9b|fig12a|fig12b|
//	                   fig13a|fig13b|fig13c|fig13rt|lostmsg|reliability|
//	                   chaos|overload|hotpath|ablation-hash|causality|
//	                   tail|cluster|bootstrap|all
//	              [-quick] [-cpuprofile] [-memprofile] [-profiledir DIR]
//
// fig13rt additionally writes BENCH_fig13.json (round trips per message,
// batched vs unbatched), chaos writes BENCH_chaos.json (seeded fault
// scripts, convergence + recovery times), overload writes
// BENCH_overload.json (degradation-ladder composition, queue bounds,
// stall-quarantine latency under sustained ~2x overload), and hotpath
// writes BENCH_hotpath.json (message-path allocs/op and throughput,
// hand-rolled codec vs encoding/json), causality writes
// BENCH_causality.json (subscriber apply throughput under hashed
// dependency cardinalities vs dotted version vectors), and tail writes
// BENCH_tail.json (open-loop publish→deliver p50/p99/p999 across an
// arrival-rate sweep, knee detection), and cluster writes
// BENCH_cluster.json (sharded-broker throughput scaling at 1/2/4
// shards, crash-to-promotion unavailability window, zero-lost verdict),
// and bootstrap writes BENCH_bootstrap.json (chunked live join time vs
// publisher size under sustained write load, max publish stall,
// crash-resume cost from the journaled chunk cursor) so future changes
// have perf and robustness trajectories.
//
// -quick shrinks every sweep for a fast end-to-end pass. -cpuprofile and
// -memprofile capture pprof profiles of the run into -profiledir
// (default ./profiles).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"time"

	"synapse/internal/bench"
	"synapse/internal/core"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run (or 'all')")
	quick := flag.Bool("quick", false, "shrink sweeps for a fast pass")
	cpuProfile := flag.Bool("cpuprofile", false, "capture a pprof CPU profile of the run")
	memProfile := flag.Bool("memprofile", false, "capture a pprof heap profile after the run")
	profileDir := flag.String("profiledir", "profiles", "directory for pprof output")
	flag.Parse()

	if *cpuProfile {
		path := profilePath(*profileDir, *exp, "cpu")
		f, err := os.Create(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
			fmt.Printf("wrote %s\n", path)
		}()
	}
	if *memProfile {
		path := profilePath(*profileDir, *exp, "heap")
		defer func() {
			f, err := os.Create(path)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, err)
				return
			}
			fmt.Printf("wrote %s\n", path)
		}()
	}

	experiments := []struct {
		name string
		run  func(quick bool)
	}{
		{"table1", runTable1},
		{"table3", runTable3},
		{"fig8", runFig8},
		{"fig9a", runFig9a},
		{"fig9b", runFig9b},
		{"fig12a", runFig12a},
		{"fig12b", runFig12b},
		{"fig13a", runFig13a},
		{"fig13b", runFig13b},
		{"fig13c", runFig13c},
		{"fig13rt", runFig13RT},
		{"lostmsg", runLostMsg},
		{"reliability", runReliability},
		{"chaos", runChaos},
		{"overload", runOverload},
		{"hotpath", runHotpath},
		{"ablation-hash", runAblationHash},
		{"causality", runCausality},
		{"tail", runTail},
		{"cluster", runCluster},
		{"bootstrap", runBootstrap},
	}

	found := false
	for _, e := range experiments {
		if *exp == "all" || *exp == e.name {
			found = true
			start := time.Now()
			fmt.Printf("==== %s ====\n", e.name)
			e.run(*quick)
			fmt.Printf("(%s completed in %s)\n\n", e.name, time.Since(start).Round(time.Millisecond))
		}
	}
	if !found {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
		os.Exit(2)
	}
}

// profilePath places a pprof output file under dir, creating dir if
// needed, named after the experiment and profile kind.
func profilePath(dir, exp, kind string) string {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	return filepath.Join(dir, fmt.Sprintf("%s-%s.pprof", exp, kind))
}

func runTable1(bool) { fmt.Print(bench.FormatTable1()) }

func runTable3(bool) {
	rows, err := bench.RunTable3()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Print(bench.FormatTable3(rows))
}

func runFig8(bool) {
	fmt.Println("Fig 8: dependency and message generation (see the golden test")
	fmt.Println("internal/core/fig8_test.go, which replays the paper's exact trace).")
	fmt.Println("Expected message dependencies, reproduced by the implementation:")
	fmt.Println("  M1: {u1: 0, p1: 0}")
	fmt.Println("  M2: {u2: 0, c1: 0, p1: 1}")
	fmt.Println("  M3: {u1: 1, c2: 0, p1: 1}")
	fmt.Println("  M4: {u1: 2, p1: 3}")
}

func runFig9a(bool) {
	tl := bench.RunFig9a()
	fmt.Println("Fig 9(a): execution sample — user posts on Diaspora; mailer and")
	fmt.Println("semantic analyzer receive in parallel; Diaspora and Spree receive")
	fmt.Println("the decorated User.")
	fmt.Print(tl.String())
}

func runFig9b(bool) {
	tl := bench.RunFig9b()
	fmt.Println("Fig 9(b): execution with subscriber disconnection — two users post")
	fmt.Println("while the mailer is offline; on reconnection it processes the users")
	fmt.Println("in parallel but each user's posts in serial (causal) order.")
	fmt.Print(tl.String())
}

func runFig12a(quick bool) {
	cfg := bench.DefaultFig12a()
	if quick {
		cfg.Calls = 300
		cfg.TimeScale = 0.02
	}
	fmt.Print(bench.RunFig12a(cfg).Format())
}

func runFig12b(quick bool) {
	cfg := bench.DefaultFig12a()
	if quick {
		cfg.TimeScale = 0.02
	}
	fmt.Print(bench.FormatFig12b(bench.RunFig12b(cfg)))
}

func runFig13a(quick bool) {
	cfg := bench.DefaultFig13a()
	if quick {
		cfg.Deps = []int{1, 10, 100, 1000}
		cfg.Samples = 5
	}
	fmt.Print(bench.FormatFig13a(bench.RunFig13a(cfg)))
}

func runFig13b(quick bool) {
	cfg := bench.DefaultFig13b()
	if quick {
		cfg.Workers = []int{1, 10, 50, 200}
		cfg.Duration = 300 * time.Millisecond
	}
	fmt.Print(bench.FormatFig13b(bench.RunFig13b(cfg)))
}

func runFig13c(quick bool) {
	cfg := bench.DefaultFig13c()
	if quick {
		cfg.Workers = []int{1, 10, 50, 200}
		cfg.Duration = 500 * time.Millisecond
	}
	fmt.Print(bench.FormatFig13c(bench.RunFig13c(cfg)))
}

func runFig13RT(quick bool) {
	cfg := bench.DefaultFig13RT()
	if quick {
		cfg.Deps = []int{1, 10, 50}
		cfg.Messages = 10
	}
	points := bench.RunFig13RT(cfg)
	fmt.Print(bench.FormatFig13RT(points))
	doc, err := bench.MarshalFig13RT(points)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err := os.WriteFile("BENCH_fig13.json", doc, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Println("wrote BENCH_fig13.json")
}

func runLostMsg(quick bool) {
	base := bench.DefaultLostMsg()
	if quick {
		base.Messages = 200
	}
	var results []bench.LostMsgResult
	for _, timeout := range []time.Duration{0, 25 * time.Millisecond, core.WaitForever} {
		cfg := base
		cfg.DepTimeout = timeout
		if timeout == core.WaitForever {
			// Pure causal: rely on queue decommission + rebootstrap.
			cfg.QueueMaxLen = 100
		}
		results = append(results, bench.RunLostMsg(cfg))
	}
	fmt.Print(bench.FormatLostMsg(results))
}

func runReliability(quick bool) {
	base := bench.DefaultReliability()
	if quick {
		base.Writes = 40
	}
	var results []bench.ReliabilityResult
	// MongoDB journals the final payload directly; PostgreSQL stages the
	// journal row inside the data transaction (transactional outbox).
	for _, engine := range []string{bench.MongoDB, bench.PostgreSQL} {
		cfg := base
		cfg.Engine = engine
		results = append(results, bench.RunReliability(cfg))
	}
	fmt.Print(bench.FormatReliability(results))
}

func runChaos(quick bool) {
	cfg := bench.DefaultChaos()
	if quick {
		cfg.Seeds = 6
		cfg.Writes = 20
		cfg.Steps = 5
	}
	results, err := bench.RunChaos(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Print(bench.FormatChaos(results))
	doc, err := bench.MarshalChaos(results)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err := os.WriteFile("BENCH_chaos.json", doc, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Println("wrote BENCH_chaos.json")
}

func runOverload(quick bool) {
	cfg := bench.DefaultOverload()
	if quick {
		cfg.Seeds = 2
		cfg.Writes = 90
	}
	results, err := bench.RunOverloadBench(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	// The recovery section's round-trip metric is a protocol count, so
	// quick and full runs measure the identical configuration.
	recovery, err := bench.RunOverloadRecovery(2000)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Print(bench.FormatOverload(results))
	fmt.Print(bench.FormatOverloadRecovery(recovery))
	doc, err := bench.MarshalOverload(results, recovery)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err := os.WriteFile("BENCH_overload.json", doc, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Println("wrote BENCH_overload.json")
}

func runHotpath(quick bool) {
	cfg := bench.DefaultHotpath()
	if quick {
		cfg.Messages = 300
		cfg.Warmup = 50
	}
	r := bench.RunHotpath(cfg)
	fmt.Print(bench.FormatHotpath(r))
	doc, err := bench.MarshalHotpath(r)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err := os.WriteFile("BENCH_hotpath.json", doc, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Println("wrote BENCH_hotpath.json")
}

func runAblationHash(quick bool) {
	cards := []uint64{1, 4, 16, 256, 0}
	workers, callback, duration := 64, 5*time.Millisecond, time.Second
	if quick {
		cards = []uint64{1, 16, 0}
		duration = 300 * time.Millisecond
	}
	fmt.Print(bench.FormatAblation(bench.RunAblationHashCardinality(cards, workers, callback, duration)))
}

func runCausality(quick bool) {
	cfg := bench.DefaultCausality()
	if quick {
		cfg.Cards = []uint64{1, 256}
		cfg.Workers = 8
		cfg.Duration = 300 * time.Millisecond
		cfg.Objects = 128
	}
	points := bench.RunCausality(cfg)
	fmt.Print(bench.FormatCausality(points))
	doc, err := bench.MarshalCausality(points)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err := os.WriteFile("BENCH_causality.json", doc, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Println("wrote BENCH_causality.json")
}

func runTail(quick bool) {
	cfg := bench.DefaultTail()
	if quick {
		// Keep the 1000 ops/s anchor point (and every capacity knob)
		// identical to the full sweep so the bench gate can compare
		// quick-run p99 against the committed baseline, and keep the
		// saturating top rate so delivered_capacity (and the serial
		// ablation the capacity gate ratios against) is still measured;
		// only the sweep breadth and horizon shrink.
		cfg.Rates = []float64{250, 1000, 5600}
		cfg.Duration = time.Second
		cfg.Warmup = 250 * time.Millisecond
	}
	r := bench.RunTail(cfg)
	fmt.Print(bench.FormatTail(r))
	doc, err := bench.MarshalTail(r)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err := os.WriteFile("BENCH_tail.json", doc, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Println("wrote BENCH_tail.json")
}

func runCluster(quick bool) {
	cfg := bench.DefaultCluster()
	if quick {
		// QuickCluster keeps every capacity knob (service time,
		// publishers, shard counts, lease TTL) identical to the default
		// so the gate-compared metrics — scaling_4x, the failover
		// window, zero_lost — stay config-invariant; only breadth
		// (messages per publisher, chaos seeds) shrinks.
		cfg = bench.QuickCluster()
	}
	r, err := bench.RunCluster(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Print(bench.FormatCluster(r))
	doc, err := bench.MarshalCluster(r)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err := os.WriteFile("BENCH_cluster.json", doc, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Println("wrote BENCH_cluster.json")
}

func runBootstrap(quick bool) {
	cfg := bench.DefaultBootstrap()
	if quick {
		// The gate-compared metrics (exact convergence, stall bound,
		// resumed walk < full walk) are config-invariant; quick only
		// shrinks the populations and the resume section.
		cfg.Sizes = []int{2_000, 20_000}
		cfg.ResumeSize = 4_000
		cfg.SettleTimeout = 30 * time.Second
	}
	r, err := bench.RunBootstrapBench(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Print(bench.FormatBootstrap(r))
	doc, err := bench.MarshalBootstrap(r)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err := os.WriteFile("BENCH_bootstrap.json", doc, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Println("wrote BENCH_bootstrap.json")
}
