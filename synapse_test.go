package synapse_test

// Tests for the public facade: everything a downstream user touches is
// exercised through the synapse package itself.

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"synapse"
)

func TestPublicAPIQuickstartFlow(t *testing.T) {
	fabric := synapse.NewFabric()

	pub, err := synapse.NewApp(fabric, "pub1",
		synapse.NewDocumentMapper(synapse.MongoDB),
		synapse.Config{Mode: synapse.Causal})
	if err != nil {
		t.Fatal(err)
	}
	user := synapse.NewModel("User",
		synapse.F("name", synapse.String),
		synapse.F("email", synapse.String),
	)
	if err := pub.Publish(user, synapse.PubSpec{Attrs: []string{"name"}}); err != nil {
		t.Fatal(err)
	}

	subMapper := synapse.NewSQLMapper(synapse.Postgres)
	sub, err := synapse.NewApp(fabric, "sub1", subMapper, synapse.Config{})
	if err != nil {
		t.Fatal(err)
	}
	subUser := synapse.NewModel("User", synapse.F("name", synapse.String))
	if err := sub.Subscribe(subUser, synapse.SubSpec{From: "pub1", Attrs: []string{"name"}}); err != nil {
		t.Fatal(err)
	}
	sub.StartWorkers(2)
	defer sub.StopWorkers()

	ctl := pub.NewController(pub.NewSession("User", "1"))
	rec := synapse.NewRecord("User", "1")
	rec.Set("name", "alice")
	rec.Set("email", "a@example.com")
	if _, err := ctl.Create(rec); err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if got, err := subMapper.Find("User", "1"); err == nil {
			if got.String("name") != "alice" {
				t.Fatalf("replicated record = %+v", got.Attrs)
			}
			if got.Has("email") {
				t.Fatal("unpublished attribute leaked")
			}
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("replication never arrived")
}

func TestPublicAPIErrors(t *testing.T) {
	fabric := synapse.NewFabric()
	pub, err := synapse.NewApp(fabric, "pub",
		synapse.NewDocumentMapper(synapse.MongoDB), synapse.Config{})
	if err != nil {
		t.Fatal(err)
	}
	user := synapse.NewModel("User", synapse.F("name", synapse.String))
	if err := pub.Publish(user, synapse.PubSpec{Attrs: []string{"name"}}); err != nil {
		t.Fatal(err)
	}

	sub, err := synapse.NewApp(fabric, "sub",
		synapse.NewDocumentMapper(synapse.MongoDB), synapse.Config{})
	if err != nil {
		t.Fatal(err)
	}
	subUser := synapse.NewModel("User",
		synapse.F("name", synapse.String),
		synapse.F("ghost", synapse.String),
	)
	if err := sub.Subscribe(subUser, synapse.SubSpec{From: "pub", Attrs: []string{"ghost"}}); !errors.Is(err, synapse.ErrUnpublished) {
		t.Errorf("subscribe unpublished = %v", err)
	}
	if err := sub.Subscribe(subUser, synapse.SubSpec{From: "pub", Attrs: []string{"name"}, Mode: synapse.Global}); !errors.Is(err, synapse.ErrModeTooStrong) {
		t.Errorf("too-strong mode = %v", err)
	}
}

func TestPublicAPIMapperConstructors(t *testing.T) {
	cases := []struct {
		mapper synapse.Mapper
		engine string
	}{
		{synapse.NewSQLMapper(synapse.Postgres), "postgresql"},
		{synapse.NewSQLMapper(synapse.MySQL), "mysql"},
		{synapse.NewSQLMapper(synapse.Oracle), "oracle"},
		{synapse.NewDocumentMapper(synapse.MongoDB), "mongodb"},
		{synapse.NewDocumentMapper(synapse.TokuMX), "tokumx"},
		{synapse.NewDocumentMapper(synapse.RethinkDB), "rethinkdb"},
		{synapse.NewColumnMapper(), "cassandra"},
		{synapse.NewSearchMapper(), "elasticsearch"},
		{synapse.NewGraphMapper(), "neo4j"},
	}
	for _, c := range cases {
		if c.mapper.Engine() != c.engine {
			t.Errorf("constructor for %s reports %s", c.engine, c.mapper.Engine())
		}
		d := synapse.NewModel("Thing", synapse.F("v", synapse.Int))
		if err := c.mapper.Register(d); err != nil {
			t.Errorf("%s Register: %v", c.engine, err)
		}
		rec := synapse.NewRecord("Thing", "t1")
		rec.Set("v", 1)
		if err := c.mapper.Save(rec); err != nil {
			t.Errorf("%s Save: %v", c.engine, err)
		}
		if got, err := c.mapper.Find("Thing", "t1"); err != nil || got.Int("v") != 1 {
			t.Errorf("%s Find = %+v, %v", c.engine, got, err)
		}
	}
}

func TestPublicAPITransaction(t *testing.T) {
	fabric := synapse.NewFabric()
	pub, err := synapse.NewApp(fabric, "pub",
		synapse.NewSQLMapper(synapse.Postgres), synapse.Config{})
	if err != nil {
		t.Fatal(err)
	}
	user := synapse.NewModel("User", synapse.F("name", synapse.String))
	if err := pub.Publish(user, synapse.PubSpec{Attrs: []string{"name"}}); err != nil {
		t.Fatal(err)
	}
	ctl := pub.NewController(nil)
	err = ctl.Transaction(func(tx *synapse.Txn) error {
		for i := 0; i < 3; i++ {
			rec := synapse.NewRecord("User", fmt.Sprintf("u%d", i))
			rec.Set("name", "x")
			if err := tx.Create(rec); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if pub.Mapper().Len("User") != 3 {
		t.Fatalf("transaction wrote %d users", pub.Mapper().Len("User"))
	}
}

func TestPublicAPIVirtualAttr(t *testing.T) {
	d := synapse.NewModel("User", synapse.F("first", synapse.String))
	d.DefineVirtual(&synapse.VirtualAttr{
		Name: "shout",
		Get:  func(r *synapse.Record) any { return r.String("first") + "!" },
	})
	rec := synapse.NewRecord("User", "1")
	rec.Set("first", "ada")
	if v := d.VirtualAttrFor("shout"); v == nil || v.Get(rec) != "ada!" {
		t.Error("virtual attr lookup through the facade failed")
	}
}

func TestPublicAPIDeliveryModeStrings(t *testing.T) {
	if synapse.Weak.String() != "weak" || synapse.Causal.String() != "causal" || synapse.Global.String() != "global" {
		t.Error("mode strings wrong")
	}
	if !(synapse.Weak < synapse.Causal && synapse.Causal < synapse.Global) {
		t.Error("mode ordering wrong")
	}
}

// TestPublicAPIDVVTracker proves the dotted-version-vector ordering
// policy is reachable through the facade: both apps configured with
// TrackerDVV, one causal create replicated end to end.
func TestPublicAPIDVVTracker(t *testing.T) {
	fabric := synapse.NewFabric()

	pub, err := synapse.NewApp(fabric, "pub1",
		synapse.NewDocumentMapper(synapse.MongoDB),
		synapse.Config{Mode: synapse.Causal, DepTracker: synapse.TrackerDVV})
	if err != nil {
		t.Fatal(err)
	}
	user := synapse.NewModel("User", synapse.F("name", synapse.String))
	if err := pub.Publish(user, synapse.PubSpec{Attrs: []string{"name"}}); err != nil {
		t.Fatal(err)
	}

	subMapper := synapse.NewSQLMapper(synapse.Postgres)
	sub, err := synapse.NewApp(fabric, "sub1", subMapper,
		synapse.Config{DepTracker: synapse.TrackerDVV})
	if err != nil {
		t.Fatal(err)
	}
	subUser := synapse.NewModel("User", synapse.F("name", synapse.String))
	if err := sub.Subscribe(subUser, synapse.SubSpec{From: "pub1", Attrs: []string{"name"}}); err != nil {
		t.Fatal(err)
	}
	sub.StartWorkers(2)
	defer sub.StopWorkers()

	ctl := pub.NewController(pub.NewSession("User", "1"))
	rec := synapse.NewRecord("User", "1")
	rec.Set("name", "alice")
	if _, err := ctl.Create(rec); err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if got, err := subMapper.Find("User", "1"); err == nil {
			if got.String("name") != "alice" {
				t.Fatalf("replicated record = %+v", got.Attrs)
			}
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("replication never arrived")
}
